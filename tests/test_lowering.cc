/**
 * @file
 * Integration tests of the lowering pipeline: Stage I construction,
 * sparse iteration lowering, sparse buffer lowering and functional
 * execution, validated against dense references.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.h"
#include "ir/printer.h"
#include "runtime/interpreter.h"
#include "support/rng.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"
#include "transform/stage1_schedule.h"

namespace sparsetir {
namespace {

using namespace ir;
using runtime::Bindings;
using runtime::NDArray;

/** Build the paper's Figure 3 SpMM Stage I program. */
PrimFunc
buildSpmm()
{
    SparseTirBuilder b("spmm");
    Var m = b.scalarParam("m");
    Var n = b.scalarParam("n");
    Var nnz = b.scalarParam("nnz");
    Var feat = b.scalarParam("feat_size");
    Axis i_axis = b.addDenseFixed("I", m);
    Axis j_axis = b.addSparseVariable("J", i_axis, n, nnz);
    Axis jd_axis = b.addDenseFixed("J_", n);
    Axis k_axis = b.addDenseFixed("K", feat);
    Buffer a = b.addSparseBuffer("A", {i_axis, j_axis});
    Buffer x = b.addSparseBuffer("B", {jd_axis, k_axis});
    Buffer c = b.addSparseBuffer("C", {i_axis, k_axis});
    b.spIter(
        {i_axis, j_axis, k_axis}, "SRS", "spmm",
        [&](const std::vector<Var> &v) {
            Expr update =
                add(bufferLoad(c, {v[0], v[2]}),
                    mul(bufferLoad(a, {v[0], v[1]}),
                        bufferLoad(x, {v[1], v[2]})));
            return bufferStore(c, {v[0], v[2]}, update);
        },
        [&](const std::vector<Var> &v) {
            return bufferStore(c, {v[0], v[2]}, floatImm(0.0f));
        });
    return b.finish();
}

/** Small CSR fixture: 4x5 matrix with 7 non-zeros. */
struct CsrFixture
{
    std::vector<int32_t> indptr = {0, 2, 3, 3, 7};
    std::vector<int32_t> indices = {1, 3, 0, 0, 2, 3, 4};
    std::vector<float> values = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f, 7.f};
    int m = 4;
    int n = 5;
};

TEST(LowerSparseIter, SpmmStructure)
{
    PrimFunc func = buildSpmm();
    EXPECT_EQ(func->stage, IrStage::kStage1);

    PrimFunc stage2 = transform::lowerSparseIterations(func);
    EXPECT_EQ(stage2->stage, IrStage::kStage2);
    std::string text = funcToString(stage2);
    // One loop per axis.
    EXPECT_NE(text.find("for i in range"), std::string::npos) << text;
    EXPECT_NE(text.find("for j in range"), std::string::npos) << text;
    EXPECT_NE(text.find("for k in range"), std::string::npos) << text;
    // B access translated into coordinate lookup (Figure 9).
    EXPECT_NE(text.find("B[J_indices["), std::string::npos) << text;
    // Data-dependent j loop is isolated behind a block.
    EXPECT_NE(text.find("block(\"spmm_0\")"), std::string::npos) << text;
    EXPECT_NE(text.find("block(\"spmm\")"), std::string::npos) << text;
}

TEST(LowerSparseBuffer, SpmmFlattening)
{
    PrimFunc stage2 = transform::lowerSparseIterations(buildSpmm());
    PrimFunc stage3 = transform::lowerSparseBuffers(stage2);
    EXPECT_EQ(stage3->stage, IrStage::kStage3);
    std::string text = funcToString(stage3);
    // A flattened through indptr (Figure 10).
    EXPECT_NE(text.find("A[(J_indptr[i] + j)]"), std::string::npos)
        << text;
    // C flattened to i * feat + k.
    EXPECT_NE(text.find("C[((i * feat_size) + k)]"), std::string::npos)
        << text;
}

TEST(Interpreter, SpmmMatchesDenseReference)
{
    CsrFixture fx;
    int feat = 3;
    PrimFunc stage3 = transform::lowerSparseBuffers(
        transform::lowerSparseIterations(buildSpmm()));

    NDArray indptr = NDArray::fromInt32(fx.indptr);
    NDArray indices = NDArray::fromInt32(fx.indices);
    NDArray a = NDArray::fromFloat(fx.values);
    std::vector<float> b_host(fx.n * feat);
    for (size_t i = 0; i < b_host.size(); ++i) {
        b_host[i] = 0.5f * static_cast<float>(i) - 2.0f;
    }
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({static_cast<int64_t>(fx.m * feat)}, DataType::float32());

    Bindings bindings;
    bindings.scalars = {{"m", fx.m},
                        {"n", fx.n},
                        {"nnz", static_cast<int64_t>(fx.values.size())},
                        {"feat_size", feat}};
    bindings.arrays = {{"J_indptr", &indptr},
                       {"J_indices", &indices},
                       {"A_data", &a},
                       {"B_data", &b},
                       {"C_data", &c}};
    runtime::run(stage3, bindings);

    // Dense reference.
    for (int i = 0; i < fx.m; ++i) {
        for (int k = 0; k < feat; ++k) {
            float expected = 0.0f;
            for (int p = fx.indptr[i]; p < fx.indptr[i + 1]; ++p) {
                expected +=
                    fx.values[p] * b_host[fx.indices[p] * feat + k];
            }
            EXPECT_FLOAT_EQ(expected, c.floatAt(i * feat + k))
                << "mismatch at (" << i << ", " << k << ")";
        }
    }
}

TEST(Interpreter, EmptyRowsLeaveZero)
{
    CsrFixture fx;  // row 2 is empty
    int feat = 2;
    PrimFunc stage3 = transform::lowerSparseBuffers(
        transform::lowerSparseIterations(buildSpmm()));
    NDArray indptr = NDArray::fromInt32(fx.indptr);
    NDArray indices = NDArray::fromInt32(fx.indices);
    NDArray a = NDArray::fromFloat(fx.values);
    NDArray b({static_cast<int64_t>(fx.n * feat)}, DataType::float32());
    for (int64_t i = 0; i < b.numel(); ++i) {
        b.setFloat(i, 1.0);
    }
    NDArray c({static_cast<int64_t>(fx.m * feat)}, DataType::float32());
    Bindings bindings;
    bindings.scalars = {{"m", fx.m},
                        {"n", fx.n},
                        {"nnz", 7},
                        {"feat_size", feat}};
    bindings.arrays = {{"J_indptr", &indptr},
                       {"J_indices", &indices},
                       {"A_data", &a},
                       {"B_data", &b},
                       {"C_data", &c}};
    runtime::run(stage3, bindings);
    EXPECT_FLOAT_EQ(c.floatAt(2 * feat + 0), 0.0f);
    EXPECT_FLOAT_EQ(c.floatAt(2 * feat + 1), 0.0f);
    EXPECT_FLOAT_EQ(c.floatAt(0 * feat + 0), 3.0f);  // 1 + 2
}

/** SDDMM with fused (I, J) iteration (paper Figures 6/8). */
PrimFunc
buildSddmm(bool fuse)
{
    SparseTirBuilder b("sddmm");
    Var m = b.scalarParam("m");
    Var n = b.scalarParam("n");
    Var nnz = b.scalarParam("nnz");
    Var feat = b.scalarParam("feat_size");
    Axis i_axis = b.addDenseFixed("I", m);
    Axis j_axis = b.addSparseVariable("J", i_axis, n, nnz);
    Axis id_axis = b.addDenseFixed("I_", m);
    Axis jd_axis = b.addDenseFixed("J_", n);
    Axis k_axis = b.addDenseFixed("K", feat);
    Buffer a = b.addSparseBuffer("A", {i_axis, j_axis});
    Buffer x = b.addSparseBuffer("X", {id_axis, k_axis});
    Buffer y = b.addSparseBuffer("Y", {k_axis, jd_axis});
    Buffer out = b.addSparseBuffer("B", {i_axis, j_axis});
    b.spIter(
        {i_axis, j_axis, k_axis}, "SSR", "sddmm",
        [&](const std::vector<Var> &v) {
            Expr update = add(
                bufferLoad(out, {v[0], v[1]}),
                mul(mul(bufferLoad(a, {v[0], v[1]}),
                        bufferLoad(x, {v[0], v[2]})),
                    bufferLoad(y, {v[2], v[1]})));
            return bufferStore(out, {v[0], v[1]}, update);
        },
        [&](const std::vector<Var> &v) {
            return bufferStore(out, {v[0], v[1]}, floatImm(0.0f));
        });
    PrimFunc func = b.finish();
    if (fuse) {
        func = transform::sparseFuse(func, "sddmm", {"I", "J"});
    }
    return func;
}

TEST(LowerSparseIter, SddmmFusedEmitsSingleSpatialLoop)
{
    PrimFunc fused = buildSddmm(true);
    PrimFunc stage2 = transform::lowerSparseIterations(fused);
    std::string text = funcToString(stage2);
    // Single fused loop over nnz plus the reduction loop.
    EXPECT_NE(text.find("for ij in range(nnz)"), std::string::npos)
        << text;
    // Row recovered by binary search over indptr.
    EXPECT_NE(text.find("upper_bound(J_indptr"), std::string::npos)
        << text;
}

TEST(Interpreter, SddmmFusedMatchesUnfused)
{
    CsrFixture fx;
    int feat = 4;
    Rng rng(7);

    auto run_variant = [&](bool fuse) {
        PrimFunc stage3 = transform::lowerSparseBuffers(
            transform::lowerSparseIterations(buildSddmm(fuse)));
        NDArray indptr = NDArray::fromInt32(fx.indptr);
        NDArray indices = NDArray::fromInt32(fx.indices);
        NDArray a = NDArray::fromFloat(fx.values);
        std::vector<float> x_host(fx.m * feat);
        std::vector<float> y_host(feat * fx.n);
        Rng local(11);
        for (auto &v : x_host) {
            v = static_cast<float>(local.uniformReal());
        }
        for (auto &v : y_host) {
            v = static_cast<float>(local.uniformReal());
        }
        NDArray x = NDArray::fromFloat(x_host);
        NDArray y = NDArray::fromFloat(y_host);
        NDArray out({static_cast<int64_t>(fx.values.size())},
                    DataType::float32());
        Bindings bindings;
        bindings.scalars = {{"m", fx.m},
                            {"n", fx.n},
                            {"nnz", 7},
                            {"feat_size", feat}};
        bindings.arrays = {{"J_indptr", &indptr},
                           {"J_indices", &indices},
                           {"A_data", &a},
                           {"X_data", &x},
                           {"Y_data", &y},
                           {"B_data", &out}};
        runtime::run(stage3, bindings);
        std::vector<float> result;
        for (int64_t i = 0; i < out.numel(); ++i) {
            result.push_back(static_cast<float>(out.floatAt(i)));
        }
        return result;
    };

    auto unfused = run_variant(false);
    auto fused = run_variant(true);
    ASSERT_EQ(unfused.size(), fused.size());
    for (size_t i = 0; i < unfused.size(); ++i) {
        EXPECT_NEAR(unfused[i], fused[i], 1e-5) << "position " << i;
    }
    // Spot check against manual SDDMM value at nnz 0: (0, 1).
    // Computed within run_variant's fixed data; just assert non-zero.
    EXPECT_NE(fused[0], 0.0f);
}

} // namespace
} // namespace sparsetir
