#include "format/hyb.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace sparsetir {
namespace format {

int64_t
Hyb::storedEntries() const
{
    int64_t total = 0;
    for (const auto &partition : buckets) {
        for (const auto &ell : partition) {
            total += ell.numRows() * ell.width;
        }
    }
    return total;
}

int64_t
Hyb::paddedZeros() const
{
    int64_t total = 0;
    for (const auto &partition : buckets) {
        for (const auto &ell : partition) {
            total += ell.paddedZeros();
        }
    }
    return total;
}

double
Hyb::paddingRatio() const
{
    int64_t stored = storedEntries();
    return stored == 0
               ? 0.0
               : static_cast<double>(paddedZeros()) /
                     static_cast<double>(stored);
}

int32_t
hybDefaultK(const Csr &m)
{
    if (m.rows == 0 || m.nnz() == 0) {
        return 0;
    }
    double avg = static_cast<double>(m.nnz()) /
                 static_cast<double>(m.rows);
    int32_t k = static_cast<int32_t>(std::ceil(std::log2(std::max(
        avg, 1.0))));
    return std::max(k, 0);
}

Hyb
hybFromCsr(const Csr &m, int32_t c, int32_t k)
{
    ICHECK_GT(c, 0);
    if (k < 0) {
        k = hybDefaultK(m);
    }
    Hyb out;
    out.numPartitions = c;
    out.maxWidthLog2 = k;
    out.rows = m.rows;
    out.cols = m.cols;
    out.buckets.resize(c);

    int64_t partition_width = (m.cols + c - 1) / c;
    int32_t max_width = 1 << k;

    for (int32_t p = 0; p < c; ++p) {
        int64_t col_lo = static_cast<int64_t>(p) * partition_width;
        int64_t col_hi = std::min<int64_t>(col_lo + partition_width,
                                           m.cols);
        // Slice this column partition into a temporary CSR, keeping
        // each entry's position in the source values array.
        Csr slice;
        std::vector<int32_t> slice_src;
        slice.rows = m.rows;
        slice.cols = m.cols;  // keep absolute column coordinates
        slice.indptr.push_back(0);
        for (int64_t r = 0; r < m.rows; ++r) {
            for (int32_t q = m.indptr[r]; q < m.indptr[r + 1]; ++q) {
                if (m.indices[q] >= col_lo && m.indices[q] < col_hi) {
                    slice.indices.push_back(m.indices[q]);
                    slice.values.push_back(m.values[q]);
                    slice_src.push_back(q);
                }
            }
            slice.indptr.push_back(
                static_cast<int32_t>(slice.indices.size()));
        }

        // Long rows split into width-2^k chunks: build a synthetic
        // "row list" of (original row, start offset, length).
        struct Chunk
        {
            int32_t row;
            int32_t start;
            int32_t len;
        };
        std::vector<std::vector<Chunk>> bucket_chunks(k + 1);
        for (int64_t r = 0; r < slice.rows; ++r) {
            int32_t len = slice.rowLength(r);
            if (len == 0) {
                continue;
            }
            if (len > max_width) {
                for (int32_t start = 0; start < len;
                     start += max_width) {
                    bucket_chunks[k].push_back(
                        {static_cast<int32_t>(r), start,
                         std::min(max_width, len - start)});
                }
                continue;
            }
            // Bucket b: 2^(b-1) < len <= 2^b.
            int32_t b = 0;
            while ((1 << b) < len) {
                ++b;
            }
            bucket_chunks[b].push_back({static_cast<int32_t>(r), 0, len});
        }

        std::vector<Ell> partition;
        partition.reserve(k + 1);
        for (int32_t b = 0; b <= k; ++b) {
            int32_t width = 1 << b;
            Ell ell;
            ell.rows = m.rows;
            ell.cols = m.cols;
            ell.width = width;
            for (const Chunk &chunk : bucket_chunks[b]) {
                ell.rowIndices.push_back(chunk.row);
                int32_t base = slice.indptr[chunk.row] + chunk.start;
                int32_t last_index = 0;
                for (int32_t j = 0; j < width; ++j) {
                    if (j < chunk.len) {
                        last_index = slice.indices[base + j];
                        ell.colIndices.push_back(slice.indices[base + j]);
                        ell.values.push_back(slice.values[base + j]);
                        ell.sourcePos.push_back(slice_src[base + j]);
                    } else {
                        ell.colIndices.push_back(last_index);
                        ell.values.push_back(0.0f);
                        ell.sourcePos.push_back(-1);
                    }
                }
            }
            partition.push_back(std::move(ell));
        }
        out.buckets[p] = std::move(partition);
    }
    return out;
}

std::vector<float>
hybToDense(const Hyb &m)
{
    std::vector<float> dense(m.rows * m.cols, 0.0f);
    for (const auto &partition : m.buckets) {
        for (const auto &ell : partition) {
            ellAddToDense(ell, &dense);
        }
    }
    return dense;
}

} // namespace format
} // namespace sparsetir
