#include "transform/stage1_schedule.h"

#include <algorithm>
#include <functional>
#include <map>

#include "ir/functor.h"

namespace sparsetir {
namespace transform {

using namespace ir;

namespace {

/** Apply fn to the named iteration; error if absent. */
PrimFunc
rewriteIteration(
    const PrimFunc &func, const std::string &iter_name,
    const std::function<Stmt(const SparseIterationNode *)> &fn)
{
    class Rewriter : public StmtMutator
    {
      public:
        Rewriter(const std::string &name,
                 const std::function<Stmt(const SparseIterationNode *)> &fn)
            : name_(name), fn_(fn)
        {}

        bool found = false;

      protected:
        Stmt
        mutateSparseIteration(const SparseIterationNode *op,
                              const Stmt &s) override
        {
            if (op->name != name_) {
                return s;
            }
            found = true;
            return fn_(op);
        }

      private:
        const std::string &name_;
        const std::function<Stmt(const SparseIterationNode *)> &fn_;
    };

    Rewriter rewriter(iter_name, fn);
    PrimFunc result = copyFunc(func);
    result->body = rewriter.mutateStmt(func->body);
    USER_CHECK(rewriter.found)
        << "no sparse iteration named '" << iter_name << "' in function '"
        << func->name << "'";
    return result;
}

} // namespace

PrimFunc
sparseReorder(const PrimFunc &func, const std::string &iter_name,
              const std::vector<std::string> &axis_order)
{
    return rewriteIteration(func, iter_name, [&](const SparseIterationNode
                                                     *op) -> Stmt {
        USER_CHECK(op->fuseGroups ==
                   std::vector<int>(op->axes.size(), 1))
            << "sparse_reorder must be applied before sparse_fuse";
        USER_CHECK(axis_order.size() == op->axes.size())
            << "sparse_reorder needs a permutation of all "
            << op->axes.size() << " axes";
        std::vector<size_t> perm;
        perm.reserve(axis_order.size());
        for (const auto &name : axis_order) {
            bool matched = false;
            for (size_t i = 0; i < op->axes.size(); ++i) {
                if (op->axes[i]->name == name) {
                    USER_CHECK(std::find(perm.begin(), perm.end(), i) ==
                               perm.end())
                        << "axis '" << name << "' listed twice";
                    perm.push_back(i);
                    matched = true;
                    break;
                }
            }
            USER_CHECK(matched) << "axis '" << name
                                << "' is not part of iteration '"
                                << op->name << "'";
        }
        std::vector<Axis> axes;
        std::vector<Var> iter_vars;
        std::vector<IterKind> kinds;
        for (size_t idx : perm) {
            axes.push_back(op->axes[idx]);
            iter_vars.push_back(op->iterVars[idx]);
            kinds.push_back(op->iterKinds[idx]);
        }
        // Dependency validation: each axis's ancestors that take part
        // in this iteration must appear before it.
        for (size_t i = 0; i < axes.size(); ++i) {
            for (Axis p = axes[i]->parent; p != nullptr; p = p->parent) {
                for (size_t j = i + 1; j < axes.size(); ++j) {
                    USER_CHECK(axes[j].get() != p.get())
                        << "reorder would place axis '" << axes[i]->name
                        << "' before its ancestor '" << p->name << "'";
                }
            }
        }
        auto node = std::make_shared<SparseIterationNode>(
            op->name, std::move(axes), std::move(iter_vars),
            std::move(kinds), op->body);
        node->init = op->init;
        return node;
    });
}

PrimFunc
sparseFuse(const PrimFunc &func, const std::string &iter_name,
           const std::vector<std::string> &axis_names)
{
    return rewriteIteration(func, iter_name, [&](const SparseIterationNode
                                                     *op) -> Stmt {
        USER_CHECK(axis_names.size() >= 2)
            << "sparse_fuse needs at least two axes";
        // Locate the named axes; they must be consecutive.
        size_t first = op->axes.size();
        for (size_t i = 0; i < op->axes.size(); ++i) {
            if (op->axes[i]->name == axis_names[0]) {
                first = i;
                break;
            }
        }
        USER_CHECK(first < op->axes.size())
            << "axis '" << axis_names[0] << "' not found in iteration '"
            << op->name << "'";
        USER_CHECK(first + axis_names.size() <= op->axes.size())
            << "fused axes run past the end of the iteration";
        for (size_t k = 0; k < axis_names.size(); ++k) {
            USER_CHECK(op->axes[first + k]->name == axis_names[k])
                << "fused axes must be consecutive; expected '"
                << axis_names[k] << "' at position " << (first + k)
                << " but found '" << op->axes[first + k]->name << "'";
            if (k > 0) {
                USER_CHECK(op->axes[first + k]->parent ==
                           op->axes[first + k - 1])
                    << "fused axes must form a parent chain ('"
                    << op->axes[first + k]->name
                    << "' does not depend on '"
                    << op->axes[first + k - 1]->name << "')";
            }
        }
        auto node = std::make_shared<SparseIterationNode>(
            op->name, op->axes, op->iterVars, op->iterKinds, op->body);
        node->init = op->init;
        // Rebuild fuse groups: collapse [first, first+n) into one.
        std::vector<int> groups;
        size_t pos = 0;
        size_t group_index = 0;
        std::vector<int> old_groups = op->fuseGroups;
        while (pos < op->axes.size()) {
            int width = old_groups[group_index++];
            if (pos == first) {
                USER_CHECK(width == 1)
                    << "axes already fused cannot be fused again";
                int merged = 0;
                while (merged <
                       static_cast<int>(axis_names.size())) {
                    USER_CHECK(old_groups[group_index - 1] == 1)
                        << "axes already fused cannot be fused again";
                    merged += 1;
                    if (merged < static_cast<int>(axis_names.size())) {
                        ++group_index;
                    }
                }
                groups.push_back(static_cast<int>(axis_names.size()));
                pos += axis_names.size();
            } else {
                groups.push_back(width);
                pos += width;
            }
        }
        node->fuseGroups = std::move(groups);
        return node;
    });
}

} // namespace transform
} // namespace sparsetir
