/**
 * @file
 * Dataflow graphs over sparse operators — the layer that turns the
 * engine from a kernel server into a model server.
 *
 * An OpGraph describes a whole pipeline (the fig16 sparse-attention
 * chain SDDMM -> masked-softmax -> SpMM, a GraphSAGE aggregate ->
 * update layer, an RGCN relation sum) as ops on nodes and values on
 * edges. Values are either dense row-major matrices or *edge tensors*:
 * one float per structural non-zero of a SparsityPattern, laid out in
 * CSR position order. Feature shapes and sparsity structures ride on
 * the edges; the ops themselves are shape-free.
 *
 * The graph is the unit of compilation: `dfg::lowerGraph` lowers it to
 * either one fused PrimFunc (all ops share the row iteration space and
 * one pattern — intermediates become per-row locals and are never
 * materialized) or a per-kernel chain (the oracle, and the fallback
 * when fusion bails), and `engine::Engine::dispatchGraph` caches the
 * result keyed on the graph's topology fingerprint.
 */

#ifndef SPARSETIR_DFG_OP_GRAPH_H_
#define SPARSETIR_DFG_OP_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "format/csr.h"

namespace sparsetir {
namespace dfg {

/**
 * Shared sparsity structure of edge tensors: the CSR position space
 * (indptr/indices) without values. Nodes that iterate the same
 * pattern (by pointer identity) share an iteration space, which is
 * what licenses fusing them into one program.
 */
struct SparsityPattern
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> indptr;   // rows + 1
    std::vector<int32_t> indices;  // nnz, sorted per row

    int64_t
    nnz() const
    {
        return static_cast<int64_t>(indices.size());
    }

    /** Widest row; the padded inner-loop extent of lowered kernels. */
    int32_t maxRowNnz() const;

    /**
     * Hash of the structure (never of values). Memoized: the O(nnz)
     * digest is computed once and cached, so fingerprinting a graph
     * on every dispatch never re-hashes the index arrays.
     */
    uint64_t structureHash() const;

    /** Borrow the structure of a CSR matrix (values dropped). */
    static std::shared_ptr<const SparsityPattern>
    fromCsr(const format::Csr &a);

  private:
    /** structureHash() cache; primed by fromCsr, else filled lazily. */
    mutable uint64_t structure_hash_ = 0;
    mutable bool hashed_ = false;
};

using PatternRef = std::shared_ptr<const SparsityPattern>;

/** Operator vocabulary of the graph layer. */
enum class OpType : uint8_t {
    /** E[p] = sum_k X[i,k] * Y[k, col(p)] over pattern rows. */
    kSddmm = 0,
    /** Row-wise numerically-stable softmax over edge values. */
    kMaskedSoftmax = 1,
    /** C[i,k] = sum_{p in row i} E[p] * B[col(p), k]. */
    kSpmm = 2,
    /** Pointwise edge map (scale / relu). */
    kElementwise = 3,
    /** H[i,k] = sum_{p in row i} X[col(p), k] (mean optional). */
    kAggregate = 4,
    /** Y[i,j] = sum_k H[i,k] * W[k,j] — dense per-row update. */
    kUpdate = 5,
    /** C[i,k] = A[i,k] + B[i,k] — dense elementwise sum. */
    kAdd = 6,
};

const char *opTypeName(OpType type);

/** Pointwise functions of kElementwise. */
enum class EwiseFn : uint8_t {
    kScale = 0,
    kRelu = 1,
};

/**
 * A value flowing along graph edges: a graph input, or the output of
 * exactly one node. Dense values are row-major rows x cols; edge
 * values hold pattern->nnz() floats in CSR position order.
 */
struct ValueDesc
{
    /** Edge tensor (true) or dense matrix (false). */
    bool edge = false;
    int64_t rows = 0;
    int64_t cols = 0;  // 0 for edge values
    /** Structure of an edge value; null for dense. */
    PatternRef pattern;
    /** Producing node id; -1 for graph inputs. */
    int producer = -1;
    /** Binding name: set for inputs and marked outputs. */
    std::string name;
};

struct Node
{
    OpType type = OpType::kSddmm;
    /** Input value ids, in operator order. */
    std::vector<int> inputs;
    int output = -1;
    /** Row iteration pattern; null for pure dense ops. */
    PatternRef pattern;
    /** kElementwise function. */
    EwiseFn fn = EwiseFn::kScale;
    /** kElementwise kScale factor. */
    double scale = 1.0;
    /** kAggregate: divide each row sum by its degree. */
    bool mean = false;
};

/**
 * Builder + storage for one dataflow graph. Methods return value ids;
 * shape conformance is checked at construction (USER_CHECK), so a
 * graph that exists is dispatchable.
 */
class OpGraph
{
  public:
    /** Declare a dense rows x cols input bound by `name` at dispatch. */
    int denseInput(const std::string &name, int64_t rows, int64_t cols);
    /** Declare an edge-tensor input over `pattern` (e.g. A values). */
    int edgeInput(const std::string &name, const PatternRef &pattern);

    /** E = SDDMM(pattern; X: m x f, Y: f x n). */
    int sddmm(const PatternRef &pattern, int x, int y);
    /** S = row-softmax(E) over E's pattern. */
    int maskedSoftmax(int e);
    /** C = SpMM(E over its pattern, B: n x f). */
    int spmm(int e, int b);
    /** S = fn(E) pointwise. */
    int elementwise(int e, EwiseFn fn, double scale = 1.0);
    /** H = neighbor sum/mean over `pattern` of X: n x f. */
    int aggregate(const PatternRef &pattern, int x, bool mean);
    /** Y = H (m x k) @ W (k x j). */
    int update(int h, int w);
    /** C = A + B, both m x f dense. */
    int add(int a, int b);

    /** Expose a value as a dispatch output bound by `name`. */
    void markOutput(int value, const std::string &name);

    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<ValueDesc> &values() const { return values_; }
    const std::vector<int> &outputs() const { return outputs_; }
    const std::vector<int> &inputs() const { return inputs_; }

    const ValueDesc &
    value(int id) const
    {
        return values_[static_cast<size_t>(id)];
    }

    /** Rows of the shared row iteration space (0 until a node exists). */
    int64_t rows() const { return rows_; }

    /** Sum of pattern nnz across nodes (cache-key shape fact). */
    int64_t totalNnz() const;

    /**
     * Fingerprint of the whole topology: op kinds and options, edge
     * wiring, dense shapes, and per-edge sparsity-structure hashes.
     * Never hashes values — two graphs over identical structures with
     * different data share one artifact; any structural change (one
     * extra non-zero, a different op option) forces a recompile.
     */
    uint64_t topologyFingerprint() const;

  private:
    int addValue(ValueDesc desc);
    int addNode(Node node, ValueDesc out);
    /** Check `name` is well-formed and unused by any other value. */
    void checkNewName(const std::string &name) const;
    /** Check `id` is a valid value id and return its descriptor. */
    const ValueDesc &checkValue(int id, const char *what) const;
    /** Enforce the shared row space across nodes. */
    void meetRows(int64_t rows);

    std::vector<Node> nodes_;
    std::vector<ValueDesc> values_;
    std::vector<int> inputs_;
    std::vector<int> outputs_;
    int64_t rows_ = 0;
};

} // namespace dfg
} // namespace sparsetir

#endif // SPARSETIR_DFG_OP_GRAPH_H_
