#include "runtime/ndarray.h"

#include <cmath>

namespace sparsetir {
namespace runtime {

NDArray::NDArray(std::vector<int64_t> shape, DataType dtype)
    : shape_(std::move(shape)), dtype_(dtype)
{
    numel_ = 1;
    for (int64_t dim : shape_) {
        ICHECK_GE(dim, 0);
        numel_ *= dim;
    }
    data_.assign(static_cast<size_t>(numel_) * elemBytes(), 0);
}

NDArray
NDArray::fromInt32(const std::vector<int32_t> &values)
{
    NDArray arr({static_cast<int64_t>(values.size())}, DataType::int32());
    if (!values.empty()) {
        std::memcpy(arr.rawData(), values.data(),
                    values.size() * sizeof(int32_t));
    }
    return arr;
}

NDArray
NDArray::fromFloat(const std::vector<float> &values)
{
    NDArray arr({static_cast<int64_t>(values.size())}, DataType::float32());
    if (!values.empty()) {
        std::memcpy(arr.rawData(), values.data(),
                    values.size() * sizeof(float));
    }
    return arr;
}

int
NDArray::elemBytes() const
{
    // float16 is stored widened to float32 on the host.
    if (dtype_.isFloat() && dtype_.bits() == 16) {
        return 4;
    }
    if (dtype_.isBool()) {
        return 1;
    }
    return dtype_.bytes();
}

int64_t
NDArray::intAt(int64_t offset) const
{
    ICHECK_GE(offset, 0);
    ICHECK_LT(offset, numel_);
    const unsigned char *p = data_.data() +
                             static_cast<size_t>(offset) * elemBytes();
    if (dtype_.isBool()) {
        return *p != 0;
    }
    ICHECK(dtype_.isInt() || dtype_.isUInt())
        << "intAt on non-int array of dtype " << dtype_.str();
    switch (dtype_.bits()) {
      case 8: {
        int8_t v;
        std::memcpy(&v, p, 1);
        return v;
      }
      case 16: {
        int16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case 32: {
        int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case 64: {
        int64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
      default:
        ICHECK(false) << "unsupported int width " << dtype_.bits();
    }
    return 0;
}

void
NDArray::setInt(int64_t offset, int64_t value)
{
    ICHECK_GE(offset, 0);
    ICHECK_LT(offset, numel_);
    unsigned char *p = data_.data() + static_cast<size_t>(offset) *
                                          elemBytes();
    if (dtype_.isBool()) {
        *p = value != 0 ? 1 : 0;
        return;
    }
    ICHECK(dtype_.isInt() || dtype_.isUInt());
    switch (dtype_.bits()) {
      case 8: {
        int8_t v = static_cast<int8_t>(value);
        std::memcpy(p, &v, 1);
        break;
      }
      case 16: {
        int16_t v = static_cast<int16_t>(value);
        std::memcpy(p, &v, 2);
        break;
      }
      case 32: {
        int32_t v = static_cast<int32_t>(value);
        std::memcpy(p, &v, 4);
        break;
      }
      case 64:
        std::memcpy(p, &value, 8);
        break;
      default:
        ICHECK(false) << "unsupported int width " << dtype_.bits();
    }
}

double
NDArray::floatAt(int64_t offset) const
{
    ICHECK_GE(offset, 0);
    ICHECK_LT(offset, numel_);
    ICHECK(dtype_.isFloat())
        << "floatAt on non-float array of dtype " << dtype_.str();
    const unsigned char *p = data_.data() +
                             static_cast<size_t>(offset) * elemBytes();
    if (dtype_.bits() == 64) {
        double v;
        std::memcpy(&v, p, 8);
        return v;
    }
    float v;
    std::memcpy(&v, p, 4);
    return v;
}

void
NDArray::setFloat(int64_t offset, double value)
{
    ICHECK_GE(offset, 0);
    ICHECK_LT(offset, numel_);
    ICHECK(dtype_.isFloat());
    unsigned char *p = data_.data() + static_cast<size_t>(offset) *
                                          elemBytes();
    if (dtype_.bits() == 64) {
        std::memcpy(p, &value, 8);
        return;
    }
    float v = static_cast<float>(value);
    std::memcpy(p, &v, 4);
}

void
NDArray::zero()
{
    std::fill(data_.begin(), data_.end(), 0);
}

double
maxAbsDiff(const NDArray &a, const NDArray &b)
{
    ICHECK_EQ(a.numel(), b.numel());
    double worst = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i) {
        double d = std::fabs(a.floatAt(i) - b.floatAt(i));
        if (d > worst) {
            worst = d;
        }
    }
    return worst;
}

} // namespace runtime
} // namespace sparsetir
