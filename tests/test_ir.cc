/**
 * @file
 * IR-level unit tests: dtype rendering, expression construction,
 * simplification, structural equality, interval analysis, printing,
 * axes and buffer flattening math.
 */

#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/simplify.h"
#include "ir/structural_equal.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"

namespace sparsetir {
namespace ir {
namespace {

TEST(DataType, Rendering)
{
    EXPECT_EQ(DataType::float32().str(), "float32");
    EXPECT_EQ(DataType::int64().str(), "int64");
    EXPECT_EQ(DataType::boolean().str(), "bool");
    EXPECT_EQ(DataType::float16().withLanes(4).str(), "float16x4");
    EXPECT_EQ(DataType::handle().str(), "handle");
    EXPECT_EQ(DataType::float32().bytes(), 4);
    EXPECT_EQ(DataType::float16().bytes(), 2);
}

TEST(Expr, SimplifyConstantFolding)
{
    Expr e = add(intImm(3), mul(intImm(4), intImm(5)));
    int64_t v = 0;
    EXPECT_TRUE(tryConstInt(simplify(e), &v));
    EXPECT_EQ(v, 23);

    // floordiv semantics on negatives.
    Expr d = floorDiv(intImm(-7), intImm(2));
    EXPECT_TRUE(tryConstInt(simplify(d), &v));
    EXPECT_EQ(v, -4);
    Expr m = floorMod(intImm(-7), intImm(2));
    EXPECT_TRUE(tryConstInt(simplify(m), &v));
    EXPECT_EQ(v, 1);
}

TEST(Expr, SimplifyIdentities)
{
    Var x = var("x");
    EXPECT_EQ(simplify(add(x, intImm(0))).get(), x.get());
    EXPECT_EQ(simplify(mul(x, intImm(1))).get(), x.get());
    EXPECT_TRUE(isConstInt(simplify(mul(x, intImm(0))), 0));
    EXPECT_TRUE(isConstInt(simplify(sub(x, Expr(x))), 0));
    // (x + 2) + 3 -> x + 5
    Expr nested = add(add(x, intImm(2)), intImm(3));
    std::string text = exprToString(simplify(nested));
    EXPECT_EQ(text, "(x + 5)");
}

TEST(Expr, PrinterRoundTripShapes)
{
    Var i = var("i");
    Var j = var("j");
    Expr e = select(lt(i, j), add(i, intImm(1)), floorDiv(j, intImm(2)));
    EXPECT_EQ(exprToString(e),
              "select((i < j), (i + 1), (j // 2))");
}

TEST(StructuralEqual, AlphaRenaming)
{
    // for x in 8: A[x] = x   ==   for y in 8: A[y] = y
    Buffer a = denseBuffer("A", {intImm(8)});
    Var x = var("x");
    Var y = var("y");
    Stmt s1 = forLoop(x, intImm(0), intImm(8),
                      bufferStore(a, {Expr(x)}, cast(a->dtype, x)));
    Stmt s2 = forLoop(y, intImm(0), intImm(8),
                      bufferStore(a, {Expr(y)}, cast(a->dtype, y)));
    EXPECT_TRUE(structuralEqual(s1, s2));

    Stmt s3 = forLoop(y, intImm(0), intImm(9),
                      bufferStore(a, {Expr(y)}, cast(a->dtype, y)));
    EXPECT_FALSE(structuralEqual(s1, s3));
}

TEST(Analysis, IntervalBounds)
{
    Var i = var("i");
    Var j = var("j");
    std::map<const VarNode *, Interval> bounds{
        {i.get(), Interval::range(0, 7)},
        {j.get(), Interval::range(0, 3)}};
    Interval r = boundsOf(add(mul(i, intImm(4)), j), bounds);
    EXPECT_TRUE(r.hasLo && r.hasHi);
    EXPECT_EQ(r.lo, 0);
    EXPECT_EQ(r.hi, 31);

    Interval m = boundsOf(floorMod(i, intImm(4)), bounds);
    EXPECT_EQ(m.lo, 0);
    EXPECT_EQ(m.hi, 3);

    Var unknown = var("u");
    Interval u = boundsOf(add(unknown, intImm(1)), bounds);
    EXPECT_FALSE(u.hasLo);
}

TEST(Axis, AncestryAndSlots)
{
    Axis i = denseFixed("I", intImm(10));
    Var indptr = var("ptr", DataType::handle());
    Var indices = var("idx", DataType::handle());
    Axis j = sparseVariable("J", i, intImm(20), intImm(55), indptr,
                            indices);
    auto chain = ancestors(j);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0].get(), i.get());
    EXPECT_EQ(chain[1].get(), j.get());

    int64_t v = 0;
    EXPECT_TRUE(tryConstInt(simplify(transform::axisSlots(j)), &v));
    EXPECT_EQ(v, 55);
    EXPECT_TRUE(tryConstInt(simplify(transform::axisSlots(i)), &v));
    EXPECT_EQ(v, 10);
}

TEST(BufferLowering, BsrFlatteningLayout)
{
    // BSR axes [IO, JO, II, JI] must flatten to
    // (indptr[io]+jo)*b^2 + ii*b + ji (paper eqs. 6-8).
    Var indptr = var("bsr_indptr", DataType::handle());
    Var indices = var("bsr_indices", DataType::handle());
    Axis io = denseFixed("IO", intImm(4));
    Axis jo = sparseVariable("JO", io, intImm(4), intImm(6), indptr,
                             indices);
    Axis ii = denseFixed("II", intImm(2));
    Axis ji = denseFixed("JI", intImm(2));
    Buffer a = matchSparseBuffer("Ab", {io, jo, ii, ji});
    int64_t v = 0;
    EXPECT_TRUE(tryConstInt(transform::sparseBufferSlots(a), &v));
    EXPECT_EQ(v, 24);  // 6 blocks x 2 x 2
}

TEST(Builder, SpIterValidation)
{
    SparseTirBuilder b("bad");
    Var m = b.scalarParam("m");
    Axis i = b.addDenseFixed("I", m);
    EXPECT_THROW(
        b.spIter({i}, "SR", "oops",
                 [](const std::vector<Var> &) -> Stmt {
                     return seq({});
                 }),
        UserError);
    EXPECT_THROW(parseIterKinds("SX"), UserError);
}

} // namespace
} // namespace ir
} // namespace sparsetir
