/**
 * @file
 * Format decomposition (paper §3.2.1 and Appendix A).
 *
 * A FormatRewriteRule describes a target format: its axes, the buffer
 * over them, the mapping from original axes to new axes and the affine
 * index maps f / f^-1 between the original and rewritten buffer.
 * decomposeFormat applies a list of rules to a Stage I function: it
 * declares the new axes/buffers, generates one copy iteration per rule
 * (original -> new format, with absent coordinates reading as zero so
 * padding falls out naturally) and rewrites each compute iteration
 * touching the target buffer into one iteration per rule.
 */

#ifndef SPARSETIR_TRANSFORM_FORMAT_DECOMPOSE_H_
#define SPARSETIR_TRANSFORM_FORMAT_DECOMPOSE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace transform {

/** Declarative description of one target format. */
struct FormatRewriteRule
{
    /** Rule name; suffixes generated iterations ("bsr_2", "ell_4"). */
    std::string name;
    /** Name of the sparse buffer to rewrite (e.g. "A"). */
    std::string bufferName;
    /** Axes of the new format, in buffer dimension order. */
    std::vector<ir::Axis> newAxes;
    /** New sparse buffer composed of newAxes. */
    ir::Buffer newBuffer;
    /**
     * Original axis name -> new axes names replacing it in iteration
     * order (e.g. {"I": ["IO","II"], "J": ["JO","JI"]}).
     */
    std::map<std::string, std::vector<std::string>> axisMap;
    /** Affine map from new coordinates to original coordinates. */
    std::function<std::vector<ir::Expr>(const std::vector<ir::Expr> &)>
        invIndexMap;
    /** Affine map from original coordinates to new coordinates. */
    std::function<std::vector<ir::Expr>(const std::vector<ir::Expr> &)>
        fwdIndexMap;
};

/** Result of a decomposition. */
struct DecomposeResult
{
    /** Rewritten function: copy iterations + per-format compute. */
    ir::PrimFunc func;
    /** Names of the generated copy iterations. */
    std::vector<std::string> copyIterNames;
    /** Names of the generated compute iterations. */
    std::vector<std::string> computeIterNames;
};

/**
 * Apply `rules` to `func` (Stage I). Each sparse iteration whose body
 * accesses the target buffer is replaced by one iteration per rule;
 * iterations not touching the buffer are kept. Format conversion is
 * the special case of a single rule.
 */
DecomposeResult decomposeFormat(const ir::PrimFunc &func,
                                const std::vector<FormatRewriteRule> &rules);

/**
 * Split a decomposed function into a preprocessing function holding
 * the copy iterations (run once for a stationary sparse structure)
 * and a compute function holding the rest (paper §3.2.1).
 */
std::pair<ir::PrimFunc, ir::PrimFunc> splitPreprocess(
    const ir::PrimFunc &func, const std::vector<std::string> &copy_names);

} // namespace transform
} // namespace sparsetir

#endif // SPARSETIR_TRANSFORM_FORMAT_DECOMPOSE_H_
