/**
 * @file
 * BytecodeVM: dispatch-loop execution of compiled Programs.
 *
 * Execution state is two flat register files plus a resolved slot
 * table (raw pointer, element kind, extent per buffer). Binding
 * resolution happens once per run — name lookups leave the hot path
 * entirely — and block windows apply through the program's
 * kBlockWindow instruction, so one Program serves every chunk of a
 * grid-split parallel execution.
 *
 * Accesses are bounds-checked against the bound extent (InternalError
 * on violation, like the interpreter); unbound buffer parameters fault
 * only when an instruction touches their slot, preserving the
 * interpreter's lazy-binding convention. Scalar parameters referenced
 * anywhere in the program must be bound up front.
 *
 * RunOptions::offsetViews rebases named parameter slots per dispatch:
 * every access of such a slot translates its absolute offset through
 * the view into the packed (write-set-sized) array bound under the
 * same name, and faults on offsets outside the window. The
 * interpreter applies the identical translation, so rebased runs stay
 * bitwise-comparable across backends.
 */

#ifndef SPARSETIR_RUNTIME_BYTECODE_VM_H_
#define SPARSETIR_RUNTIME_BYTECODE_VM_H_

#include "runtime/bytecode/program.h"
#include "runtime/interpreter.h"

namespace sparsetir {
namespace runtime {
namespace bytecode {

/**
 * Execute `program` over `bindings`, honoring options.blockBegin /
 * blockEnd (options.backend is ignored — this IS the bytecode
 * backend). Results are bitwise identical to interpreting the source
 * function with the same options.
 */
void execute(const Program &program, const Bindings &bindings,
             const RunOptions &options = RunOptions());

} // namespace bytecode
} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_BYTECODE_VM_H_
