/**
 * @file
 * Reproduces Figure 20: end-to-end RGCN inference speedup against
 * Graphiler, plus GPU memory footprint, for {PyG, DGL, Graphiler,
 * SparseTIR(naive), SparseTIR(hyb), SparseTIR(hyb+TC)}.
 */

#include <cstdio>

#include "baselines/frameworks.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "graph/hetero.h"
#include "model/rgcn.h"

using namespace sparsetir;

namespace {

double
runPlan(const baselines::RgcnPlan &plan, gpusim::Device &device,
        double efficiency)
{
    gpusim::SimOptions opts;
    opts.efficiency = efficiency;
    double total = 0.0;
    for (const auto &kernel : plan.kernels) {
        total += device.launch(*kernel, opts).timeMs;
    }
    // Framework dispatch overhead per extra launch.
    total += plan.extraLaunches * 0.01;
    return total;
}

void
runDevice(const gpusim::GpuSpec &spec)
{
    gpusim::Device device(spec);
    int64_t feat = 32;
    std::printf("\n--- %s (speedup vs Graphiler | footprint GB) ---\n",
                spec.name.c_str());
    std::printf("%-12s %8s %8s %10s %10s %9s %10s || %8s %8s %8s\n",
                "graph", "PyG", "DGL", "Graphiler", "ST(naive)",
                "ST(hyb)", "ST(hyb+TC)", "fw-GB", "naive-GB",
                "hyb-GB");
    for (const auto &spec_h : graph::table2Heterographs()) {
        graph::HeteroSpec hs = spec_h;
        if (benchutil::fastMode()) {
            hs.nodes = std::min<int64_t>(hs.nodes, 8000);
            hs.edges = std::min<int64_t>(hs.edges, 60000);
        }
        format::RelationalCsr g = graph::generateHetero(hs);

        auto pyg = baselines::pygRgcn(g, feat, feat);
        auto dgl = baselines::dglRgcn(g, feat, feat);
        auto graphiler = baselines::graphilerRgcn(g, feat, feat);
        double pyg_ms =
            runPlan(pyg, device, baselines::kFrameworkEfficiency);
        double dgl_ms =
            runPlan(dgl, device, baselines::kFrameworkEfficiency);
        double graphiler_ms =
            runPlan(graphiler, device,
                    baselines::kFrameworkEfficiency);

        model::RgcnResult naive =
            model::rgcnSparseTirNaive(g, feat, device);
        model::RgcnResult hyb =
            model::rgcnSparseTirHyb(g, feat, device, false);
        model::RgcnResult hyb_tc =
            model::rgcnSparseTirHyb(g, feat, device, true);

        double gb = 1.0 / (1024.0 * 1024.0 * 1024.0);
        std::printf("%-12s %8.2f %8.2f %10.2f %10.2f %9.2f %10.2f || "
                    "%8.3f %8.3f %8.3f\n",
                    hs.name.c_str(), graphiler_ms / pyg_ms,
                    graphiler_ms / dgl_ms, 1.0,
                    graphiler_ms / naive.timeMs,
                    graphiler_ms / hyb.timeMs,
                    graphiler_ms / hyb_tc.timeMs,
                    (dgl.intermediateBytes) * gb,
                    naive.footprintBytes * gb,
                    hyb.footprintBytes * gb);
    }
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 20: RGCN inference vs Graphiler (feat 32) + memory "
        "footprint");
    runDevice(gpusim::GpuSpec::v100());
    runDevice(gpusim::GpuSpec::rtx3070());
    std::printf(
        "\nPaper (V100): SparseTIR(hyb+TC) 4.2-40.2x vs Graphiler; "
        "hyb (no TC) 0.9-19.8x; naive\n0.3-7.8x; footprint: fused "
        "kernels drop the HBM intermediate T by 1-2 orders of "
        "magnitude.\nExpected shape: hyb+TC > hyb > naive; SparseTIR "
        "footprint << framework footprint.\n");
    return 0;
}
