#!/usr/bin/env python3
"""CI perf gate over bench_engine_throughput's JSON output.

Usage: check_perf_gate.py <bench.json> <min_backend_speedup>

Fails (exit 1) when the bytecode backend's warm-dispatch speedup over
the interpreter falls below the threshold, or when the two backends
stopped producing bitwise-identical outputs. Malformed input — an
unreadable or syntactically invalid JSON file, missing fields, or
nonsense measurements (non-positive timings) — exits 2 with a
diagnostic, so CI can tell "the gate tripped" (1) from "the gate
never ran" (2). The JSON itself is uploaded as a workflow artifact so
the speedup trajectory (and the batched-throughput numbers, when
present) is trackable across commits. The "warm_latency" object
(experiment [9]) is printed as an informational per-op p50/p95/p99
trajectory, and the "tiers" object (experiment [11]) as an
informational interpreter -> bytecode -> native req/s trajectory per
op family — malformed fields in either exit 2 like any other bad
input.
"""

import json
import sys


def fail_input(message: str) -> int:
    """Malformed-input exit: distinct from a genuine gate failure."""
    print(f"perf gate: bad input: {message}", file=sys.stderr)
    return 2


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        threshold = float(sys.argv[2])
    except ValueError:
        return fail_input(
            f"threshold {sys.argv[2]!r} is not a number"
        )
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as err:
        return fail_input(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        return fail_input(f"{path} is not valid JSON: {err}")
    if not isinstance(data, dict):
        return fail_input(f"{path} does not hold a JSON object")

    try:
        interpreter_ms = float(data["interpreter_warm_ms"])
        bytecode_ms = float(data["bytecode_warm_ms"])
        speedup = float(data["backend_speedup"])
        identical = bool(data["bitwise_identical"])
    except KeyError as err:
        return fail_input(f"{path} is missing field {err}")
    except (TypeError, ValueError) as err:
        return fail_input(f"{path} holds a non-numeric field: {err}")
    if bytecode_ms <= 0.0 or interpreter_ms <= 0.0:
        return fail_input(
            f"non-positive timings (interpreter {interpreter_ms}, "
            f"bytecode {bytecode_ms}): the benchmark did not measure"
        )

    print(
        f"perf gate: interpreter {interpreter_ms:.2f} ms -> "
        f"bytecode {bytecode_ms:.2f} ms = {speedup:.2f}x "
        f"(threshold {threshold:.1f}x), bitwise_identical={identical}"
    )
    # Batched-throughput trajectory (informational, not gated) — but
    # malformed fields are still bad input, not a tripped gate.
    if "batched_req_per_s" in data:
        try:
            sequential_rps = float(
                data.get("sequential_req_per_s", 0.0)
            )
            batched_rps = float(data["batched_req_per_s"])
            batched_speedup = float(data.get("batched_speedup", 0.0))
        except (TypeError, ValueError) as err:
            return fail_input(
                f"{path} holds a non-numeric batched field: {err}"
            )
        print(
            f"batched dispatch: "
            f"{data.get('batch_requests', '?')} in flight, "
            f"{sequential_rps:.1f} req/s sequential -> "
            f"{batched_rps:.1f} req/s batched "
            f"({batched_speedup:.2f}x), "
            f"bitwise_identical="
            f"{data.get('batch_bitwise_identical', 'n/a')}"
        )
    # Fused task-graph trajectory (experiment [7], informational —
    # gate it once two runs of trajectory exist). Malformed fields
    # are still bad input, not a tripped gate.
    if "fused_req_per_s" in data:
        try:
            barriered_rps = float(data.get("barriered_req_per_s", 0.0))
            fused_rps = float(data["fused_req_per_s"])
            fused_speedup = float(data.get("fused_speedup", 0.0))
        except (TypeError, ValueError) as err:
            return fail_input(
                f"{path} holds a non-numeric fused field: {err}"
            )
        print(
            f"fused task-graph dispatch: "
            f"{barriered_rps:.1f} req/s barriered -> "
            f"{fused_rps:.1f} req/s fused "
            f"({fused_speedup:.2f}x), "
            f"bitwise_identical="
            f"{data.get('fused_bitwise_identical', 'n/a')}"
        )
    # Graph-compilation trajectory (experiment [10], informational —
    # fused whole-model pipelines vs per-node chains). Malformed
    # fields are still bad input, not a tripped gate.
    for model in ("attention", "graphsage"):
        key = f"graph_{model}_fused_req_per_s"
        if key not in data:
            continue
        try:
            chain_rps = float(
                data.get(f"graph_{model}_chain_req_per_s", 0.0)
            )
            graph_fused_rps = float(data[key])
            graph_speedup = float(
                data.get(f"graph_{model}_speedup", 0.0)
            )
        except (TypeError, ValueError) as err:
            return fail_input(
                f"{path} holds a non-numeric graph field: {err}"
            )
        print(
            f"graph compilation [{model}]: "
            f"{chain_rps:.1f} req/s chain -> "
            f"{graph_fused_rps:.1f} req/s fused "
            f"({graph_speedup:.2f}x), "
            f"bitwise_identical="
            f"{data.get(f'graph_{model}_bitwise_identical', 'n/a')}"
        )
    # Privatization-scratch high-water marks (informational, not
    # gated): span-sized leases vs the naive units x output figure.
    for prefix, label in (
        ("scratch", "batched hyb"),
        ("rgcn_scratch", "rgcn"),
    ):
        if f"{prefix}_peak_bytes" not in data:
            continue
        try:
            peak = float(data[f"{prefix}_peak_bytes"])
            naive = float(data.get(f"{prefix}_naive_bytes", 0.0))
        except (TypeError, ValueError) as err:
            return fail_input(
                f"{path} holds a non-numeric scratch field: {err}"
            )
        ratio = f" ({peak / naive:.1%} of naive)" if naive > 0 else ""
        print(
            f"scratch high-water mark [{label}]: "
            f"{peak / 1e6:.2f} MB span-sized leases, naive "
            f"full-output leases {naive / 1e6:.2f} MB{ratio}"
        )
    # Static-verification cost at build time (informational, not
    # gated): kernels proven, failures, and total prover milliseconds
    # for the warm-latency engine's artifacts. Zero kernels means the
    # verifier was off for this build/env combination.
    if "verify" in data:
        verify = data["verify"]
        if not isinstance(verify, dict):
            return fail_input(f"{path} verify is not a JSON object")
        try:
            verified = int(verify["verified_kernels"])
            failures = int(verify["verify_failures"])
            verify_ms = float(verify["verify_ms"])
        except (TypeError, KeyError, ValueError) as err:
            return fail_input(f"{path} verify is malformed: {err}")
        if verified < 0 or failures < 0 or verify_ms < 0.0:
            return fail_input(
                f"{path} verify holds negative counters "
                f"({verified} kernels, {failures} failures, "
                f"{verify_ms} ms)"
            )
        if verified > 0:
            print(
                f"static verification: {verified} kernel(s) proven "
                f"in {verify_ms:.2f} ms "
                f"({verify_ms / verified:.2f} ms/kernel), "
                f"{failures} failure(s)"
            )
        else:
            print(
                "static verification: off for this build "
                "(0 kernels verified)"
            )
    # Tiered-execution trajectory (experiment [11], informational —
    # no hard gate until the three-tier numbers have a trajectory;
    # the gated speedup stays bytecode-vs-interpreter above). Prints
    # warm req/s per op family for interpreter -> bytecode -> native,
    # plus the native tier's one-time compile cost. Malformed fields
    # are still bad input, not a tripped gate.
    if "tiers" in data:
        tiers = data["tiers"]
        if not isinstance(tiers, dict):
            return fail_input(f"{path} tiers is not a JSON object")
        for op in sorted(tiers):
            row = tiers[op]
            try:
                interp_rps = float(row["interpreter_req_per_s"])
                bytecode_rps = float(row["bytecode_req_per_s"])
                native_rps = float(row["native_req_per_s"])
            except (TypeError, KeyError, ValueError) as err:
                return fail_input(
                    f"{path} tiers[{op!r}] is malformed: {err}"
                )
            if min(interp_rps, bytecode_rps, native_rps) <= 0.0:
                return fail_input(
                    f"{path} tiers[{op!r}] holds a non-positive "
                    f"rate (interpreter {interp_rps}, bytecode "
                    f"{bytecode_rps}, native {native_rps})"
                )
            native_x = (
                f" ({native_rps / interp_rps:.2f}x interpreter)"
                if interp_rps > 0
                else ""
            )
            print(
                f"tiered execution [{op}]: "
                f"{interp_rps:.1f} req/s interpreter -> "
                f"{bytecode_rps:.1f} req/s bytecode -> "
                f"{native_rps:.1f} req/s native{native_x}, "
                f"bitwise_identical="
                f"{row.get('bitwise_identical', 'n/a')}"
            )
        try:
            compiles = int(data.get("native_compiles", 0))
            disk_hits = int(data.get("native_disk_hits", 0))
            compile_ms = float(data.get("native_compile_ms", 0.0))
        except (TypeError, ValueError) as err:
            return fail_input(
                f"{path} holds a malformed native counter: {err}"
            )
        if compiles < 0 or disk_hits < 0 or compile_ms < 0.0:
            return fail_input(
                f"{path} holds negative native counters "
                f"({compiles} compiles, {disk_hits} disk hits, "
                f"{compile_ms} ms)"
            )
        print(
            f"native tier: {compiles} kernel compile(s) in "
            f"{compile_ms:.1f} ms, {disk_hits} disk hit(s)"
        )
    # Warm-dispatch latency percentiles per op kind (experiment [9],
    # informational — the p50/p99 trajectory is tracked across
    # commits, no gate). Malformed histogram fields are still bad
    # input, not a tripped gate.
    if "warm_latency" in data:
        warm = data["warm_latency"]
        if not isinstance(warm, dict):
            return fail_input(
                f"{path} warm_latency is not a JSON object"
            )
        for op in sorted(warm):
            hist = warm[op]
            try:
                count = int(hist["count"])
                p50 = float(hist["p50_ms"])
                p95 = float(hist["p95_ms"])
                p99 = float(hist["p99_ms"])
            except (TypeError, KeyError, ValueError) as err:
                return fail_input(
                    f"{path} warm_latency[{op!r}] is malformed: {err}"
                )
            if count <= 0:
                return fail_input(
                    f"{path} warm_latency[{op!r}] has no samples "
                    f"(count {count})"
                )
            if min(p50, p95, p99) < 0.0:
                return fail_input(
                    f"{path} warm_latency[{op!r}] holds a negative "
                    f"latency (p50 {p50}, p95 {p95}, p99 {p99})"
                )
            if not p50 <= p95 <= p99:
                return fail_input(
                    f"{path} warm_latency[{op!r}] percentiles are "
                    f"not monotone (p50 {p50}, p95 {p95}, p99 {p99})"
                )
            print(
                f"warm latency [{op}]: p50 {p50:.3f} ms / "
                f"p95 {p95:.3f} ms / p99 {p99:.3f} ms "
                f"({count} samples)"
            )
    if not identical:
        print("FAIL: backends diverged bitwise", file=sys.stderr)
        return 1
    if speedup < threshold:
        print(
            f"FAIL: backend speedup {speedup:.2f}x below the "
            f"{threshold:.1f}x gate",
            file=sys.stderr,
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
