/**
 * @file
 * Functional execution of lowered SparseTIR programs.
 *
 * The interpreter walks Stage II/III IR and executes it on the host:
 * GPU thread-binding loops run as plain serial loops (the lowering
 * keeps per-thread work disjoint or reduction-local, so serial
 * emulation is exact). It is the reference semantics against which
 * every schedule primitive must be meaning-preserving, and the source
 * of numerical ground truth for the benchmark suite.
 */

#ifndef SPARSETIR_RUNTIME_INTERPRETER_H_
#define SPARSETIR_RUNTIME_INTERPRETER_H_

#include <map>
#include <string>

#include "ir/prim_func.h"
#include "runtime/ndarray.h"

namespace sparsetir {
namespace runtime {

/** Bindings from function parameter names to arrays/scalars. */
struct Bindings
{
    /** Handle params (buffer data, indptr, indices) by param name. */
    std::map<std::string, NDArray *> arrays;
    /** Scalar int params by name. */
    std::map<std::string, int64_t> scalars;
};

/**
 * Execute a PrimFunc over the given bindings. Buffers are updated in
 * place. Throws UserError when a parameter binding is missing and
 * InternalError on IR-level inconsistencies (e.g. out-of-bounds
 * access, which indicates a lowering bug).
 */
void run(const ir::PrimFunc &func, const Bindings &bindings);

/** Execute every function in a module, in order. */
void runModule(const ir::Module &mod, const Bindings &bindings);

} // namespace runtime
} // namespace sparsetir

#endif // SPARSETIR_RUNTIME_INTERPRETER_H_
