/**
 * @file
 * Horizontal fusion (paper §3.5): merge several Stage III kernels into
 * one launch to amortize kernel-launch overhead of composable formats.
 * The fused kernel dispatches on blockIdx.x ranges.
 */

#ifndef SPARSETIR_TRANSFORM_HORIZONTAL_FUSION_H_
#define SPARSETIR_TRANSFORM_HORIZONTAL_FUSION_H_

#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace transform {

/**
 * Fuse Stage III kernels whose outermost loop is bound to blockIdx.x
 * with a constant grid size. The result has one blockIdx.x loop of the
 * summed extent and guards selecting the original bodies. Parameters
 * and buffer maps are concatenated (deduplicated by handle).
 */
ir::PrimFunc horizontalFuse(const std::vector<ir::PrimFunc> &kernels,
                            const std::string &name);

} // namespace transform
} // namespace sparsetir

#endif // SPARSETIR_TRANSFORM_HORIZONTAL_FUSION_H_
