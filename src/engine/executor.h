/**
 * @file
 * Deterministic parallel execution of lowered kernels on the host
 * backends (bytecode VM by default, tree-walking interpreter as the
 * reference oracle).
 *
 * Two axes of parallelism, both preserving the serial interpreter's
 * results exactly (bitwise, up to IEEE signed-zero identity):
 *
 *  - runKernel: one kernel's outermost blockIdx.x loop is split into
 *    contiguous chunks executed on worker threads — one VM instance
 *    per block window over the kernel's shared Program. Plain
 *    (overwrite) stores to bound buffers are per-block disjoint by
 *    the lowering contract, so chunks write shared storage directly.
 *    Read-modify-write outputs (cache_write accumulate, rfactor
 *    write-back, atomic_add) are privatized: each chunk accumulates
 *    into a private zero copy, and the privates are folded into the
 *    shared buffer in chunk order. Per output element the sequence of
 *    additions is exactly the serial one, so float results match the
 *    serial interpreter.
 *
 *  - runKernels: independent kernels of one request (hyb bucket
 *    kernels, RGCN per-relation-bucket kernels) run concurrently,
 *    with the same privatization applied per kernel and privates
 *    folded in kernel-list order. Non-accumulated writes of kernels
 *    in one batch must target disjoint elements (true for every
 *    kernel family the engine emits, which share outputs only
 *    through accumulation).
 *
 * A third axis composes with both: runKernelBatch / runKernelsBatch
 * execute one compiled artifact for MANY in-flight requests, each
 * request carrying its own bindings (its own feature/output arrays
 * over shared structure). Units from the cross product of (requests x
 * chunks-or-kernels) share the pool; requests never share written
 * storage, so the per-request guarantees above hold unchanged.
 *
 * Privatization replays the serial addition order per element only
 * when each parallel unit performs at most ONE read-modify-write
 * write-back per output element: folding a private that accumulated
 * two write-backs (a1 + a2) onto a non-zero pre-value computes
 * pre + (a1 + a2) where serial computed ((pre + a1) + a2) — an
 * ULP-level reassociation. Kernels that can write one element twice
 * (hyb's widest bucket when long rows were split into several ELL
 * rows) are therefore marked `exclusive` by the caller — the engine
 * derives the mask from format provenance (duplicate row indices) —
 * and runKernels executes them at their exact list position directly
 * on shared storage, parallelizing the kernels between them.
 *
 * Privatization cost — scratch bytes AND zero/fold work — is bounded
 * by each kernel's write set, not the output size: a CompiledKernel's
 * AccumOutput may carry the element spans the kernel can touch (the
 * engine derives them from scatter row indices), and the executor
 * then leases scratch sized to the sum of span extents, binds it
 * through an offset-translating window (runtime::OffsetView threaded
 * via RunOptions::offsetViews — kernels keep writing absolute
 * offsets), and zeroes/folds exactly that compact buffer. A unit
 * touching 2% of the rows pays 2% of the scratch bytes and zero/fold
 * work, so a many-unit dispatch peaks at O(sum of span extents), not
 * O(units x output). A unit whose write set is empty takes a
 * zero-byte lease and folds nothing — its output is left
 * bit-identical (the whole-array fallback is an explicit AccumOutput
 * flag, never inferred from an empty span list). Accesses outside
 * the declared
 * spans fault on both backends, turning the "spans MUST cover every
 * element the kernel updates" contract into a checked one.
 *
 * The write-set classification is computed from the IR, not trusted
 * from callers: accumulatedParams() scans for read-modify-write
 * stores and atomic_add calls on parameter-bound buffers.
 */

#ifndef SPARSETIR_ENGINE_EXECUTOR_H_
#define SPARSETIR_ENGINE_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "ir/prim_func.h"
#include "runtime/bytecode/program.h"
#include "runtime/interpreter.h"
#include "runtime/ndarray.h"

namespace sparsetir {

namespace runtime {
namespace native {
struct NativeKernel;
} // namespace native
} // namespace runtime

namespace engine {

/** Per-call execution controls. */
struct ExecOptions
{
    /** Worker cap for this call; 0 means the pool size. */
    int workers = 0;
    /** Do not split a grid into chunks smaller than this. */
    int64_t minBlocksPerChunk = 8;
    /** Master switch; false forces serial in-order execution. */
    bool parallel = true;
    /** Host backend kernels execute on. */
    runtime::Backend backend = runtime::Backend::kBytecode;
    /**
     * Route multi-kernel / multi-request dispatches through the fused
     * task graph (runTaskGraph): one work pool over every (request,
     * kernel, grid-chunk) unit with no barrier between kernels or
     * requests. The engine entry points honor this; runKernels /
     * runKernelsBatch themselves always run the barriered schedule
     * and stay available as the differential oracle.
     */
    bool fusedDispatch = true;
};

/** Element range [begin, end) of a flat buffer. */
using Span = std::pair<int64_t, int64_t>;

/** One read-modify-write output of a kernel. */
struct AccumOutput
{
    /** Parameter name of the accumulated buffer. */
    std::string name;
    /**
     * Write set unknown: privatization falls back to a
     * whole-output-sized scratch copy with no offset translation.
     * setSpans() clears this and installs the exact write set —
     * which may be EMPTY, meaning the kernel touches no element and
     * privatization leases, zeroes and folds nothing. (Historically
     * an empty span list was the whole-array sentinel, so a
     * zero-touched-rows unit paid a full-output zero+fold and
     * flipped -0.0 pre-values to +0.0; the explicit flag removes
     * that ambiguity.)
     */
    bool wholeArray = true;
    /**
     * Compact window over the write set (meaningful when
     * !wholeArray): sorted, disjoint absolute spans that MUST cover
     * every element the kernel updates — enforced, since both
     * backends fault on accesses outside the window — packed into
     * window.numel == sum(span extents) scratch elements.
     */
    runtime::OffsetView window;

    /**
     * Install the exact write set (sorted, disjoint element spans,
     * e.g. from touchedRowSpans) and build its packed window.
     */
    void setSpans(std::vector<Span> spans);
};

/**
 * Atomically swappable native-kernel attachment of a CompiledKernel.
 *
 * The box is created empty at compile time and shared by every copy
 * of the kernel (artifacts hand kernels around by value); when the
 * engine's background promotion finishes a native build it set()s the
 * pointer, and in-flight dispatches pick it up on their next get() —
 * the "atomic artifact swap" of the tiered-execution design. Loads
 * and stores use the C++17 atomic shared_ptr free functions, so
 * readers never see a torn pointer and the .so stays alive (its
 * refcounted dlopen handle) for as long as any dispatch uses it.
 */
class NativeBox
{
  public:
    std::shared_ptr<const runtime::native::NativeKernel>
    get() const
    {
        return std::atomic_load(&ptr_);
    }

    void
    set(std::shared_ptr<const runtime::native::NativeKernel> kernel)
    {
        std::atomic_store(&ptr_, std::move(kernel));
    }

  private:
    std::shared_ptr<const runtime::native::NativeKernel> ptr_;
};

/**
 * A kernel in executable form: Stage III IR plus the compiled
 * bytecode program and the cached write-set analysis. This is the
 * unit engine artifacts cache — warm dispatches reuse the program
 * and analysis without touching the IR.
 */
struct CompiledKernel
{
    ir::PrimFunc func;
    /** Null when the function is not bytecode-compilable. */
    std::shared_ptr<const runtime::bytecode::Program> program;
    /** Accumulated outputs (see accumulatedParams). */
    std::vector<AccumOutput> accums;
    /**
     * Kernel may write one output element more than once; it then
     * runs serially at its list position (see file comment).
     */
    bool exclusive = false;
    /**
     * Launch info spilled at compile time: the extent expression of
     * the outermost blockIdx.x-bound loop, null when the kernel has
     * no block grid. Warm dispatches size their grid by evaluating
     * this against the request's scalar bindings
     * (runtime::evalScalarExtent) — the interpreter-based
     * runtime::launchInfo probe never runs on the warm path.
     */
    ir::Expr blockExtent;
    /**
     * Native-tier attachment, shared by every copy of this kernel
     * (see NativeBox). Empty until the engine promotes the kernel;
     * kNative dispatches that find it empty execute on bytecode.
     */
    std::shared_ptr<NativeBox> native;
};

/**
 * Compile `func` for execution: bytecode program (interpreter-only
 * functions get a null program and fall back transparently) plus the
 * write-set analysis, with whole-array accumulators (callers narrow
 * them via AccumOutput::setSpans). Pass `with_program` = false for
 * interpreter-backend sessions to skip bytecode compilation for
 * programs they will never execute, and `analyze_accums` = false
 * when the caller supplies a precomputed write-set list (skips the
 * IR walk).
 */
CompiledKernel compileKernel(const ir::PrimFunc &func,
                             bool with_program = true,
                             bool analyze_accums = true);

/**
 * Element spans of `rows` (a scatter-target row list, duplicates
 * allowed) over a row-major output with `row_width` elements per
 * row: sorted, merged, disjoint.
 */
std::vector<Span> touchedRowSpans(const std::vector<int32_t> &rows,
                                  int64_t row_width);

/** Scratch-pool accounting snapshot (see ScratchPool::stats). */
struct ScratchStats
{
    /** Bytes currently out on lease. */
    int64_t leasedBytes = 0;
    /** High-water mark of leasedBytes since the last resetPeak(). */
    int64_t peakLeasedBytes = 0;
    /** Bytes retained on the free lists, awaiting reuse. */
    int64_t freeBytes = 0;
    /** Total acquire() calls. */
    uint64_t leases = 0;
    /** Leases served by constructing a new buffer (pool misses). */
    uint64_t allocations = 0;
};

/**
 * Pool of reusable privatization buffers keyed by (numel, dtype).
 *
 * Contents of a lease are UNSPECIFIED — freshly constructed NDArrays
 * happen to be zero-filled, but callers must not rely on it; the
 * executor zeroes every lease itself, and poisonFree() lets tests
 * overwrite retained buffers to prove that. Retained free bytes are
 * bounded (maxFreeBytes, least-recently-released-first trim), so a
 * long-lived session serving many distinct shapes cannot accumulate
 * unbounded scratch. All methods are thread-safe.
 */
class ScratchPool
{
  public:
    struct Lease
    {
        runtime::NDArray *array = nullptr;
        /** Newly constructed for this lease (pool miss). */
        bool fresh = false;
    };

    /** Default free-list retention budget across all keys. */
    static constexpr int64_t kDefaultMaxFreeBytes = 256ll << 20;

    explicit ScratchPool(int64_t max_free_bytes = kDefaultMaxFreeBytes);

    Lease acquire(int64_t numel, ir::DataType dtype);
    void release(runtime::NDArray *array);

    /** Accounting snapshot (peak tracks leased bytes, see stats). */
    ScratchStats stats() const;
    /** Restart the high-water mark from the current leased bytes. */
    void resetPeak();
    /**
     * Overwrite every retained free buffer with `byte` — a test hook
     * for the zero-on-lease contract: execution results must never
     * depend on what a reused lease happens to contain.
     */
    void poisonFree(unsigned char byte);

  private:
    using Key = std::pair<int64_t, uint64_t>;
    /** A retained buffer with its release recency stamp. */
    struct FreeEntry
    {
        std::unique_ptr<runtime::NDArray> array;
        uint64_t seq = 0;
    };

    /** Caller holds mu_. Drop the least-recently-released buffer. */
    void evictOldestLocked();

    mutable std::mutex mu_;
    int64_t maxFreeBytes_;
    /** Per-key stacks; entries within a key are release-ordered. */
    std::map<Key, std::vector<FreeEntry>> free_;
    /** Leased arrays, for key recovery on release. */
    std::map<runtime::NDArray *, Key> leased_;
    int64_t freeBytes_ = 0;
    int64_t leasedBytes_ = 0;
    int64_t peakLeasedBytes_ = 0;
    uint64_t leases_ = 0;
    uint64_t allocations_ = 0;
    uint64_t seq_ = 0;
};

/**
 * Plan of one fused dispatch: the cross product of N kernels x M
 * requests flattened into ONE schedulable unit pool, plus the
 * per-request fold chains that keep the results bitwise identical to
 * serial dispatch.
 *
 * Compute units — a kernel's grid chunk under one request's bindings,
 * privatized onto write-set-sized scratch — carry no ordering
 * constraints at all: a unit of hyb bucket 3 / request 2 may run
 * before a unit of bucket 0 / request 0. Determinism lives entirely
 * in the chains: per request, privates fold in kernel list order
 * (chunk order within a kernel), and an exclusive kernel (one that
 * may write an element twice, see the file comment) executes on
 * shared storage at its exact list position — after every earlier
 * kernel's fold, before every later one's — while OTHER requests'
 * units keep flowing through the pool. Per (request, output) element
 * the addition sequence is therefore exactly the serial one; there is
 * no barrier anywhere.
 */
struct TaskGraph
{
    /** One compute unit: a grid chunk of `kernel` under `request`. */
    struct Unit
    {
        int request = 0;
        int kernel = 0;
        /** Grid window [blockBegin, blockEnd); blockEnd -1: unsplit. */
        int64_t blockBegin = 0;
        int64_t blockEnd = -1;
    };

    /**
     * One link of a request's fold chain, in kernel list order:
     * either the in-order fold of a non-exclusive kernel's privatized
     * chunk units, or the serial execution of an exclusive kernel on
     * shared storage at its list position.
     */
    struct ChainEntry
    {
        int kernel = 0;
        bool exclusive = false;
        /** First unit index + count (chunk order); 0/0 if exclusive. */
        size_t firstUnit = 0;
        int numUnits = 0;
    };

    std::vector<const CompiledKernel *> kernels;
    std::vector<Unit> units;
    /** chains[r]: request r's entries, one per kernel, in list order. */
    std::vector<std::vector<ChainEntry>> chains;
    int numRequests = 0;
};

class ParallelExecutor
{
  public:
    explicit ParallelExecutor(std::shared_ptr<ThreadPool> pool);

    const std::shared_ptr<ThreadPool> &pool() const { return pool_; }

    /**
     * Names of parameter-bound buffers the kernel updates by
     * read-modify-write (accumulate write-back or atomic_add).
     */
    static std::vector<std::string>
    accumulatedParams(const ir::PrimFunc &func);

    /** Execute one kernel, splitting its blockIdx range if profitable. */
    void runKernel(const CompiledKernel &kernel,
                   const runtime::Bindings &bindings,
                   const ExecOptions &options = ExecOptions()) const;

    /**
     * Execute a batch of kernels over shared bindings. Results are
     * bitwise identical to running the kernels serially in list
     * order; exclusive kernels run serially at their list position.
     */
    void runKernels(const std::vector<const CompiledKernel *> &kernels,
                    const runtime::Bindings &bindings,
                    const ExecOptions &options = ExecOptions()) const;

    /**
     * Multi-request dispatch: execute ONE kernel once per request,
     * each request under its own bindings. Work is striped across
     * the cross product of (in-flight requests x grid-split chunks)
     * on the pool; per request the result is bitwise identical to a
     * serial run of the kernel under that request's bindings.
     * Requests must bind disjoint output arrays (they may — and on
     * the engine's batched path do — share read-only inputs).
     */
    void runKernelBatch(const CompiledKernel &kernel,
                        const std::vector<runtime::Bindings> &requests,
                        const ExecOptions &options = ExecOptions()) const;

    /**
     * Multi-request, multi-kernel dispatch: for every request,
     * execute all kernels as runKernels would under that request's
     * bindings, striping (request, kernel) units across the pool.
     * Exclusive kernels stay serial *within* their request but still
     * run concurrently across requests, whose outputs are disjoint.
     */
    void
    runKernelsBatch(const std::vector<const CompiledKernel *> &kernels,
                    const std::vector<runtime::Bindings> &requests,
                    const ExecOptions &options = ExecOptions()) const;

    /**
     * Plan a fused dispatch of `kernels` x `requests` (see TaskGraph):
     * each non-exclusive (request, kernel) pair is split into at most
     * ceil(workers / pairs) grid chunks — evaluated against that
     * request's scalar bindings via the spilled block extent, never an
     * interpreter probe — so the unit count stays near the worker
     * count; once the cross product alone saturates the pool nothing
     * is split. The graph borrows `kernels`; both it and `requests`
     * must outlive every runTaskGraph call, which must receive the
     * same requests and compatible options.
     */
    TaskGraph
    buildTaskGraph(const std::vector<const CompiledKernel *> &kernels,
                   const std::vector<runtime::Bindings> &requests,
                   const ExecOptions &options = ExecOptions()) const;

    /**
     * Pointer form of the fused entry points: requests are borrowed,
     * not copied. This is the engine's single-request hot path —
     * wrapping one Bindings in a value vector would deep-copy its
     * maps on every warm dispatch.
     */
    TaskGraph buildTaskGraph(
        const std::vector<const CompiledKernel *> &kernels,
        const std::vector<const runtime::Bindings *> &requests,
        const ExecOptions &options = ExecOptions()) const;

    /**
     * Execute a fused dispatch plan as ONE work pool: every compute
     * unit is privatized up front, all units (plus one chain-kickoff
     * task per request, so a chain headed by an exclusive kernel
     * starts without waiting on any compute) are striped across the
     * pool, and each request's fold chain advances opportunistically
     * as its kernels' units complete — no barrier between hyb buckets
     * or between batch requests. Results are bitwise identical to
     * serial dispatch and to the barriered runKernels/runKernelsBatch
     * schedules (same per-element fold order; see TaskGraph).
     * Requests must bind disjoint output arrays.
     */
    void runTaskGraph(const TaskGraph &graph,
                      const std::vector<runtime::Bindings> &requests,
                      const ExecOptions &options = ExecOptions()) const;

    /** Pointer form (see the pointer buildTaskGraph overload). */
    void runTaskGraph(
        const TaskGraph &graph,
        const std::vector<const runtime::Bindings *> &requests,
        const ExecOptions &options = ExecOptions()) const;

    /** buildTaskGraph + runTaskGraph in one call. */
    void
    runKernelsFused(const std::vector<const CompiledKernel *> &kernels,
                    const std::vector<runtime::Bindings> &requests,
                    const ExecOptions &options = ExecOptions()) const;

    /** Single-request fused dispatch; `bindings` is borrowed. */
    void
    runKernelsFused(const std::vector<const CompiledKernel *> &kernels,
                    const runtime::Bindings &bindings,
                    const ExecOptions &options = ExecOptions()) const;

    /**
     * Convenience overload: compile-and-run one function. `accum`,
     * when non-null, is the precomputed accumulatedParams() of
     * `func`; null recomputes it on the fly.
     */
    void runKernel(const ir::PrimFunc &func,
                   const runtime::Bindings &bindings,
                   const ExecOptions &options = ExecOptions(),
                   const std::vector<std::string> *accum = nullptr) const;

    /**
     * Convenience overload over raw functions. `exclusive`, when
     * non-empty, must parallel `funcs`; `accums`, when non-null,
     * must parallel `funcs` with precomputed accumulatedParams().
     */
    void runKernels(const std::vector<ir::PrimFunc> &funcs,
                    const runtime::Bindings &bindings,
                    const ExecOptions &options = ExecOptions(),
                    const std::vector<uint8_t> &exclusive =
                        std::vector<uint8_t>(),
                    const std::vector<std::vector<std::string>>
                        *accums = nullptr) const;

    /** Scratch accounting of this executor's privatization pool. */
    ScratchStats
    scratchStats() const
    {
        return scratch_.stats();
    }

    /** Reset the scratch high-water mark (benchmark sections). */
    void
    resetScratchPeak() const
    {
        scratch_.resetPeak();
    }

    /** Test hook: poison retained scratch (see ScratchPool). */
    void
    poisonScratch(unsigned char byte) const
    {
        scratch_.poisonFree(byte);
    }

    /**
     * Lease request-lifetime scratch from the privatization pool.
     * The graph dispatcher's per-kernel fallback chain materializes
     * its intermediate tensors here so ScratchStats accounts for them
     * (the fused path's headline: peak scratch below the chain's
     * intermediate footprint). Pair every lease with releaseScratch;
     * contents are unspecified (see ScratchPool).
     */
    ScratchPool::Lease
    leaseScratch(int64_t numel, ir::DataType dtype) const
    {
        return scratch_.acquire(numel, dtype);
    }

    /** Return a leaseScratch array to the pool. */
    void
    releaseScratch(runtime::NDArray *array) const
    {
        scratch_.release(array);
    }

  private:
    /** A privatized accumulator leased for one parallel unit. */
    struct Private
    {
        const AccumOutput *out = nullptr;
        runtime::NDArray *array = nullptr;
    };

    /**
     * parallelFor over [0, n) honoring a per-call worker cap below
     * the pool size by fanning out in waves of at most `workers`
     * units. The single implementation behind every fan-out site.
     */
    void forCapped(int64_t n, int workers,
                   const std::function<void(int64_t)> &fn) const;

    /**
     * Swap each accumulated output for a zeroed scratch lease:
     * write-set-sized and offset-translated (the view is appended to
     * `run`) when the kernel carries spans, whole-output-sized
     * otherwise. An empty write set takes a zero-element lease with
     * an empty, always-faulting window — no bytes, but any stray
     * write faults instead of scribbling.
     */
    runtime::Bindings privatize(const CompiledKernel &kernel,
                                const runtime::Bindings &shared,
                                std::vector<Private> *privates,
                                runtime::RunOptions *run) const;
    void foldAndRelease(const runtime::Bindings &shared,
                        std::vector<Private> *privates) const;
    /** Error-path cleanup: return every live lease to the pool. */
    void releaseAll(std::vector<std::vector<Private>> *privates) const;

    std::shared_ptr<ThreadPool> pool_;
    mutable ScratchPool scratch_;
};

} // namespace engine
} // namespace sparsetir

#endif // SPARSETIR_ENGINE_EXECUTOR_H_
