#include "baselines/cublas.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel>
cublasGemm(int64_t m, int64_t n, int64_t k, bool tensor_cores)
{
    return std::make_unique<DenseGemmKernel>("cublas_gemm", m, n, k,
                                             tensor_cores);
}

} // namespace baselines
} // namespace sparsetir
