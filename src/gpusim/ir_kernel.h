/**
 * @file
 * Replay of lowered (Stage III) SparseTIR functions on the GPU
 * simulator.
 *
 * IrKernel walks the function's loop nest with the bound data:
 *  - thread-binding loops tagged blockIdx.* form the grid;
 *  - the threadIdx.x loop is evaluated per warp, detecting coalescing
 *    by evaluating each access's address at lanes 0/1;
 *  - constant-extent dense loops whose bodies are data-independent
 *    are aggregated analytically (stride sampling) instead of being
 *    iterated, so feature-dimension loops cost O(1);
 *  - data-dependent loops (CSR rows, ELL buckets) iterate with real
 *    indptr/indices data, so load-balance and locality effects are
 *    driven by the actual sparse structure;
 *  - blocks annotated "tensorize" route flops to the Tensor-Core pipe
 *    and halve operand traffic (fp16).
 */

#ifndef SPARSETIR_GPUSIM_IR_KERNEL_H_
#define SPARSETIR_GPUSIM_IR_KERNEL_H_

#include <map>
#include <memory>
#include <string>

#include "gpusim/simulator.h"
#include "ir/prim_func.h"
#include "runtime/interpreter.h"

namespace sparsetir {
namespace gpusim {

/** A Stage III function + data bindings as a simulatable kernel. */
class IrKernel : public Kernel
{
  public:
    /**
     * `bindings` must bind every handle/scalar parameter; arrays must
     * outlive the kernel.
     */
    IrKernel(ir::PrimFunc func, const runtime::Bindings &bindings);
    ~IrKernel() override;

    std::string name() const override;
    int64_t numBlocks() const override;
    void blockWork(int64_t block_id, BlockWork *work) const override;

    /** Total bytes of all bound global buffers (footprint input). */
    int64_t globalBytes() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace gpusim
} // namespace sparsetir

#endif // SPARSETIR_GPUSIM_IR_KERNEL_H_
