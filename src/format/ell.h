/**
 * @file
 * ELLPACK storage with a row-index list, the building block of the
 * composable hyb(c, k) format (paper §4.2.1, Figure 11).
 */

#ifndef SPARSETIR_FORMAT_ELL_H_
#define SPARSETIR_FORMAT_ELL_H_

#include <cstdint>
#include <vector>

#include "format/csr.h"

namespace sparsetir {
namespace format {

/**
 * ELL sub-matrix: a subset of rows (rowIndices) each storing exactly
 * `width` column entries, padded with zero values. Padded slots repeat
 * the last valid column index (keeping per-row indices sorted) or 0
 * for empty rows.
 */
struct Ell
{
    int64_t rows = 0;  // rows in the original matrix
    int64_t cols = 0;
    int32_t width = 0;              // stored entries per row
    std::vector<int32_t> rowIndices;  // original row of each ELL row
    std::vector<int32_t> colIndices;  // numRows() * width
    std::vector<float> values;        // numRows() * width
    /**
     * Provenance of each stored slot: position in the source CSR's
     * values array, or -1 for a padding zero. Lets a serving runtime
     * re-gather values for a new matrix with identical sparsity
     * structure without re-running the bucketing.
     */
    std::vector<int32_t> sourcePos;   // numRows() * width

    int64_t
    numRows() const
    {
        return static_cast<int64_t>(rowIndices.size());
    }

    /** Stored padding zeros. */
    int64_t paddedZeros() const;
};

/**
 * Build an ELL sub-matrix from selected rows of a CSR matrix; each
 * selected row must have length <= width.
 */
Ell ellFromCsrRows(const Csr &m, const std::vector<int32_t> &rows,
                   int32_t width);

/** Scatter back to a dense (rows x cols) matrix. */
void ellAddToDense(const Ell &m, std::vector<float> *dense);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_ELL_H_
