#include "ir/structural_equal.h"

#include <map>

namespace sparsetir {
namespace ir {

namespace {

class EqualChecker
{
  public:
    bool
    exprEqual(const Expr &a, const Expr &b)
    {
        if (a == b) {
            return true;
        }
        if (a == nullptr || b == nullptr) {
            return false;
        }
        if (a->kind != b->kind || a->dtype != b->dtype) {
            return false;
        }
        switch (a->kind) {
          case ExprKind::kIntImm:
            return static_cast<const IntImmNode *>(a.get())->value ==
                   static_cast<const IntImmNode *>(b.get())->value;
          case ExprKind::kFloatImm:
            return static_cast<const FloatImmNode *>(a.get())->value ==
                   static_cast<const FloatImmNode *>(b.get())->value;
          case ExprKind::kStringImm:
            return static_cast<const StringImmNode *>(a.get())->value ==
                   static_cast<const StringImmNode *>(b.get())->value;
          case ExprKind::kVar: {
            auto va = static_cast<const VarNode *>(a.get());
            auto vb = static_cast<const VarNode *>(b.get());
            auto it = varMap_.find(va);
            if (it != varMap_.end()) {
                return it->second == vb;
            }
            return va == vb;
          }
          case ExprKind::kNot: {
            auto na = static_cast<const NotNode *>(a.get());
            auto nb = static_cast<const NotNode *>(b.get());
            return exprEqual(na->a, nb->a);
          }
          case ExprKind::kSelect: {
            auto sa = static_cast<const SelectNode *>(a.get());
            auto sb = static_cast<const SelectNode *>(b.get());
            return exprEqual(sa->cond, sb->cond) &&
                   exprEqual(sa->trueValue, sb->trueValue) &&
                   exprEqual(sa->falseValue, sb->falseValue);
          }
          case ExprKind::kCast: {
            auto ca = static_cast<const CastNode *>(a.get());
            auto cb = static_cast<const CastNode *>(b.get());
            return exprEqual(ca->value, cb->value);
          }
          case ExprKind::kBufferLoad: {
            auto la = static_cast<const BufferLoadNode *>(a.get());
            auto lb = static_cast<const BufferLoadNode *>(b.get());
            return bufferEqual(la->buffer, lb->buffer) &&
                   exprListEqual(la->indices, lb->indices);
          }
          case ExprKind::kRamp: {
            auto ra = static_cast<const RampNode *>(a.get());
            auto rb = static_cast<const RampNode *>(b.get());
            return ra->lanes == rb->lanes && exprEqual(ra->base, rb->base) &&
                   exprEqual(ra->stride, rb->stride);
          }
          case ExprKind::kBroadcast: {
            auto ba = static_cast<const BroadcastNode *>(a.get());
            auto bb = static_cast<const BroadcastNode *>(b.get());
            return ba->lanes == bb->lanes &&
                   exprEqual(ba->value, bb->value);
          }
          case ExprKind::kCall: {
            auto ca = static_cast<const CallNode *>(a.get());
            auto cb = static_cast<const CallNode *>(b.get());
            return ca->op == cb->op && ca->name == cb->name &&
                   bufferEqual(ca->bufferArg, cb->bufferArg) &&
                   exprListEqual(ca->args, cb->args);
          }
          default: {
            // Binary nodes.
            auto ba = static_cast<const BinaryNode *>(a.get());
            auto bb = static_cast<const BinaryNode *>(b.get());
            return exprEqual(ba->a, bb->a) && exprEqual(ba->b, bb->b);
          }
        }
    }

    bool
    stmtEqual(const Stmt &a, const Stmt &b)
    {
        if (a == b) {
            return true;
        }
        if (a == nullptr || b == nullptr) {
            return false;
        }
        if (a->kind != b->kind) {
            return false;
        }
        switch (a->kind) {
          case StmtKind::kBufferStore: {
            auto sa = static_cast<const BufferStoreNode *>(a.get());
            auto sb = static_cast<const BufferStoreNode *>(b.get());
            return bufferEqual(sa->buffer, sb->buffer) &&
                   exprListEqual(sa->indices, sb->indices) &&
                   exprEqual(sa->value, sb->value);
          }
          case StmtKind::kSeq: {
            auto sa = static_cast<const SeqStmtNode *>(a.get());
            auto sb = static_cast<const SeqStmtNode *>(b.get());
            if (sa->seq.size() != sb->seq.size()) {
                return false;
            }
            for (size_t i = 0; i < sa->seq.size(); ++i) {
                if (!stmtEqual(sa->seq[i], sb->seq[i])) {
                    return false;
                }
            }
            return true;
          }
          case StmtKind::kFor: {
            auto fa = static_cast<const ForNode *>(a.get());
            auto fb = static_cast<const ForNode *>(b.get());
            if (fa->forKind != fb->forKind ||
                fa->threadTag != fb->threadTag) {
                return false;
            }
            if (!exprEqual(fa->minValue, fb->minValue) ||
                !exprEqual(fa->extent, fb->extent)) {
                return false;
            }
            varMap_[fa->loopVar.get()] = fb->loopVar.get();
            bool ok = stmtEqual(fa->body, fb->body);
            varMap_.erase(fa->loopVar.get());
            return ok;
          }
          case StmtKind::kBlock: {
            auto ba = static_cast<const BlockNode *>(a.get());
            auto bb = static_cast<const BlockNode *>(b.get());
            if (ba->name != bb->name) {
                return false;
            }
            if ((ba->init == nullptr) != (bb->init == nullptr)) {
                return false;
            }
            if (ba->init != nullptr && !stmtEqual(ba->init, bb->init)) {
                return false;
            }
            return stmtEqual(ba->body, bb->body);
          }
          case StmtKind::kIfThenElse: {
            auto ia = static_cast<const IfThenElseNode *>(a.get());
            auto ib = static_cast<const IfThenElseNode *>(b.get());
            if (!exprEqual(ia->cond, ib->cond) ||
                !stmtEqual(ia->thenBody, ib->thenBody)) {
                return false;
            }
            if ((ia->elseBody == nullptr) != (ib->elseBody == nullptr)) {
                return false;
            }
            return ia->elseBody == nullptr ||
                   stmtEqual(ia->elseBody, ib->elseBody);
          }
          case StmtKind::kLetStmt: {
            auto la = static_cast<const LetStmtNode *>(a.get());
            auto lb = static_cast<const LetStmtNode *>(b.get());
            if (!exprEqual(la->value, lb->value)) {
                return false;
            }
            varMap_[la->letVar.get()] = lb->letVar.get();
            bool ok = stmtEqual(la->body, lb->body);
            varMap_.erase(la->letVar.get());
            return ok;
          }
          case StmtKind::kAllocate: {
            auto aa = static_cast<const AllocateNode *>(a.get());
            auto ab = static_cast<const AllocateNode *>(b.get());
            bufferMap_[aa->buffer.get()] = ab->buffer.get();
            bool ok = stmtEqual(aa->body, ab->body);
            bufferMap_.erase(aa->buffer.get());
            return ok;
          }
          case StmtKind::kEvaluate: {
            auto ea = static_cast<const EvaluateNode *>(a.get());
            auto eb = static_cast<const EvaluateNode *>(b.get());
            return exprEqual(ea->value, eb->value);
          }
          case StmtKind::kSparseIteration: {
            auto ia = static_cast<const SparseIterationNode *>(a.get());
            auto ib = static_cast<const SparseIterationNode *>(b.get());
            if (ia->name != ib->name ||
                ia->axes.size() != ib->axes.size() ||
                ia->iterKinds != ib->iterKinds ||
                ia->fuseGroups != ib->fuseGroups) {
                return false;
            }
            for (size_t i = 0; i < ia->axes.size(); ++i) {
                if (ia->axes[i] != ib->axes[i]) {
                    return false;
                }
            }
            for (size_t i = 0; i < ia->iterVars.size(); ++i) {
                varMap_[ia->iterVars[i].get()] = ib->iterVars[i].get();
            }
            bool ok = true;
            if ((ia->init == nullptr) != (ib->init == nullptr)) {
                ok = false;
            } else if (ia->init != nullptr) {
                ok = stmtEqual(ia->init, ib->init);
            }
            ok = ok && stmtEqual(ia->body, ib->body);
            for (size_t i = 0; i < ia->iterVars.size(); ++i) {
                varMap_.erase(ia->iterVars[i].get());
            }
            return ok;
          }
          default:
            return false;
        }
    }

  private:
    bool
    bufferEqual(const Buffer &a, const Buffer &b)
    {
        if (a == b) {
            return true;
        }
        if (a == nullptr || b == nullptr) {
            return false;
        }
        auto it = bufferMap_.find(a.get());
        if (it != bufferMap_.end()) {
            return it->second == b.get();
        }
        // Distinct buffer objects compare by name + dtype + rank, which
        // suffices for cross-function comparisons in tests.
        return a->name == b->name && a->dtype == b->dtype &&
               a->ndim() == b->ndim();
    }

    bool
    exprListEqual(const std::vector<Expr> &a, const std::vector<Expr> &b)
    {
        if (a.size() != b.size()) {
            return false;
        }
        for (size_t i = 0; i < a.size(); ++i) {
            if (!exprEqual(a[i], b[i])) {
                return false;
            }
        }
        return true;
    }

    std::map<const VarNode *, const VarNode *> varMap_;
    std::map<const BufferNode *, const BufferNode *> bufferMap_;
};

} // namespace

bool
structuralEqual(const Expr &a, const Expr &b)
{
    EqualChecker checker;
    return checker.exprEqual(a, b);
}

bool
structuralEqual(const Stmt &a, const Stmt &b)
{
    EqualChecker checker;
    return checker.stmtEqual(a, b);
}

} // namespace ir
} // namespace sparsetir
