/**
 * @file
 * RGCN inference on a heterogeneous graph (paper §4.4.1): compares
 * the two-stage gather-matmul-scatter against SparseTIR's fused RGMS
 * over 3-D hyb, with and without Tensor Cores — Figure 20's story.
 *
 * Build & run:  ./build/examples/rgcn_inference
 */

#include <cstdio>

#include "engine/engine.h"
#include "format/relational.h"
#include "graph/hetero.h"
#include "model/rgcn.h"
#include "support/rng.h"

using namespace sparsetir;

int
main()
{
    graph::HeteroSpec spec = graph::heteroSpec("AIFB");
    format::RelationalCsr g = graph::generateHetero(spec);
    std::printf("heterograph %s: %lld nodes, %lld edges, %d edge "
                "types\n",
                spec.name.c_str(), static_cast<long long>(g.rows),
                static_cast<long long>(g.totalNnz()), spec.numEtypes);

    format::RelationalHyb hyb = format::relationalHyb(g, 1, 5);
    std::printf("3-D hyb(1,5): %.1f%% padding (Table 2 column)\n\n",
                hyb.paddingRatio() * 100.0);

    int64_t feat = 32;
    gpusim::Device device(gpusim::GpuSpec::v100());

    model::RgcnResult naive =
        model::rgcnSparseTirNaive(g, feat, device);
    model::RgcnResult fused =
        model::rgcnSparseTirHyb(g, feat, device, false);
    model::RgcnResult fused_tc =
        model::rgcnSparseTirHyb(g, feat, device, true);

    double mb = 1.0 / (1024.0 * 1024.0);
    std::printf("SparseTIR(naive):  %8.3f ms, footprint %7.1f MB "
                "(T materialized per relation)\n",
                naive.timeMs, naive.footprintBytes * mb);
    std::printf("SparseTIR(hyb):    %8.3f ms, footprint %7.1f MB "
                "(fused, %.2fx)\n",
                fused.timeMs, fused.footprintBytes * mb,
                naive.timeMs / fused.timeMs);
    std::printf("SparseTIR(hyb+TC): %8.3f ms, footprint %7.1f MB "
                "(fused + Tensor Cores, %.2fx)\n",
                fused_tc.timeMs, fused_tc.footprintBytes * mb,
                naive.timeMs / fused_tc.timeMs);
    std::printf("\nBoth composable formats (load balance) and "
                "composable transformations (tensorization)\nmatter — "
                "the paper's Figure 20 ablation.\n");

    // Host inference through the engine: one kernel per (relation,
    // bucket), compiled once and dispatched concurrently; the second
    // layer's dispatch reuses the cached artifact. A small feature
    // size keeps the interpreted demo quick.
    int64_t host_feat = 8;
    engine::Engine session(engine::EngineOptions{});
    Rng rng(11);
    std::vector<float> x_host(g.cols * host_feat);
    std::vector<float> w_host(host_feat * host_feat);
    for (auto &v : x_host) {
        v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
    }
    for (auto &v : w_host) {
        v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
    }
    runtime::NDArray x = runtime::NDArray::fromFloat(x_host);
    runtime::NDArray w = runtime::NDArray::fromFloat(w_host);
    runtime::NDArray y({g.rows * host_feat}, ir::DataType::float32());

    engine::DispatchInfo layer1 =
        session.rgcn(g, host_feat, &x, &w, &y);
    runtime::NDArray y2({g.rows * host_feat},
                        ir::DataType::float32());
    engine::DispatchInfo layer2 =
        session.rgcn(g, host_feat, &y, &w, &y2);
    std::printf("\nengine host inference: %d fused RGMS kernels/layer\n",
                layer1.numKernels);
    std::printf("  layer 1: %s, compile %.1f ms, exec %.1f ms\n",
                layer1.cacheHit ? "cache hit" : "cold compile",
                layer1.compileMs, layer1.execMs);
    std::printf("  layer 2: %s, compile %.4f ms, exec %.1f ms\n",
                layer2.cacheHit ? "cache hit" : "cold compile",
                layer2.compileMs, layer2.execMs);
    return 0;
}
