#include "format/bsr.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace sparsetir {
namespace format {

double
Bsr::paddingRatio()
    const
{
    if (values.empty()) {
        return 0.0;
    }
    int64_t zeros = 0;
    for (float v : values) {
        if (v == 0.0f) {
            ++zeros;
        }
    }
    return static_cast<double>(zeros) / static_cast<double>(values.size());
}

Bsr
bsrFromCsr(const Csr &m, int32_t block_size)
{
    ICHECK_GT(block_size, 0);
    Bsr out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.blockSize = block_size;
    out.blockRows = (m.rows + block_size - 1) / block_size;
    out.blockCols = (m.cols + block_size - 1) / block_size;
    out.indptr.assign(out.blockRows + 1, 0);

    int64_t bs2 = static_cast<int64_t>(block_size) * block_size;
    for (int64_t br = 0; br < out.blockRows; ++br) {
        // Gather the non-zero block columns of this block row.
        std::map<int32_t, std::vector<float>> blocks;
        for (int64_t r = br * block_size;
             r < std::min<int64_t>((br + 1) * block_size, m.rows); ++r) {
            for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
                int32_t bc = m.indices[p] / block_size;
                auto &block = blocks[bc];
                if (block.empty()) {
                    block.assign(bs2, 0.0f);
                }
                int64_t ii = r - br * block_size;
                int64_t ji = m.indices[p] - int64_t(bc) * block_size;
                block[ii * block_size + ji] = m.values[p];
            }
        }
        for (auto &[bc, block] : blocks) {
            out.indices.push_back(bc);
            out.values.insert(out.values.end(), block.begin(),
                              block.end());
        }
        out.indptr[br + 1] = static_cast<int32_t>(out.indices.size());
    }
    return out;
}

std::vector<float>
bsrToDense(const Bsr &m)
{
    std::vector<float> dense(m.rows * m.cols, 0.0f);
    int64_t bs = m.blockSize;
    for (int64_t br = 0; br < m.blockRows; ++br) {
        for (int32_t p = m.indptr[br]; p < m.indptr[br + 1]; ++p) {
            int64_t bc = m.indices[p];
            const float *block = &m.values[int64_t(p) * bs * bs];
            for (int64_t ii = 0; ii < bs; ++ii) {
                for (int64_t ji = 0; ji < bs; ++ji) {
                    int64_t r = br * bs + ii;
                    int64_t c = bc * bs + ji;
                    if (r < m.rows && c < m.cols) {
                        dense[r * m.cols + c] = block[ii * bs + ji];
                    }
                }
            }
        }
    }
    return dense;
}

} // namespace format
} // namespace sparsetir
