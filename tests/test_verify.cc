/**
 * @file
 * Static artifact verifier tests: positive controls proving every
 * pipeline kernel family clean under symbolic format facts, a
 * known-bad IR regression corpus (dropped spatial guard -> OOB, stale
 * or empty write-set spans, seeded parallel race) that must each be
 * rejected with a category-correct diagnostic, and the engine-level
 * contract that verification runs once per artifact with the verdict
 * cached.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "format/csr.h"
#include "format/hyb.h"
#include "ir/analysis.h"
#include "ir/expr.h"
#include "ir/functor.h"
#include "ir/prim_func.h"
#include "ir/stmt.h"
#include "support/rng.h"
#include "test_util.h"
#include "verify/verifier.h"

namespace sparsetir {
namespace {

using engine::Engine;
using engine::EngineOptions;
using format::Csr;
using runtime::NDArray;
using testutil::randomVector;

ir::Var
param(const ir::PrimFunc &func, const std::string &name)
{
    for (const auto &p : func->params) {
        if (p->name == name) {
            return p;
        }
    }
    ADD_FAILURE() << "missing param " << name;
    return nullptr;
}

/** J_indptr-style facts: non-negative, monotone 0 -> total. */
void
indptrFact(verify::VerifyContext *ctx, const std::string &name,
           ir::Expr total)
{
    verify::ValueFact fact;
    fact.lo = ir::intImm(0);
    fact.hi = total;
    fact.first = ir::intImm(0);
    fact.last = total;
    fact.sorted = true;
    ctx->facts[name] = fact;
}

/** J_indices-style facts: valid ids in [0, count). */
void
idxFact(verify::VerifyContext *ctx, const std::string &name,
        ir::Expr count)
{
    verify::ValueFact fact;
    fact.lo = ir::intImm(0);
    fact.hi = ir::sub(count, ir::intImm(1));
    ctx->facts[name] = fact;
}

verify::VerifyContext
csrSymbolicFacts(const ir::PrimFunc &func)
{
    verify::VerifyContext ctx;
    indptrFact(&ctx, "J_indptr", param(func, "nnz"));
    idxFact(&ctx, "J_indices", param(func, "n"));
    return ctx;
}

bool
hasCategory(const verify::VerifyResult &result,
            verify::DiagCategory category)
{
    for (const auto &diag : result.diagnostics) {
        if (diag.category == category) {
            return true;
        }
    }
    return false;
}

Csr
smallCsr()
{
    Csr a;
    a.rows = 7;
    a.cols = 9;
    a.indptr = {0, 3, 3, 4, 9, 9, 14, 15};
    a.indices = {0, 2, 5, 1, 0, 1, 2, 3, 4, 0, 2, 4, 6, 8, 7};
    a.values.assign(15, 1.0f);
    return a;
}

Csr
randomCsr(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (auto &v : dense) {
        if (rng.uniformReal() < density) {
            v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
            if (v == 0.0f) {
                v = 0.5f;
            }
        }
    }
    return format::csrFromDense(rows, cols, dense);
}

// ---------------------------------------------------------------------
// Positive controls: every pipeline kernel family proves clean under
// the format facts alone, i.e. for EVERY structure, not one request's.
// Odd feature widths (37) force split tails so the guard proofs carry
// real weight.
// ---------------------------------------------------------------------

TEST(Verify, SpmmCsrProvesCleanSymbolically)
{
    for (int64_t feat : {48, 37}) {
        for (int rpb : {1, 4}) {
            core::SpmmSchedule sched;
            sched.rowsPerBlock = rpb;
            ir::PrimFunc func = core::compileSpmmCsrFunc(feat, sched);
            auto result = verify::verifyFunc(func, csrSymbolicFacts(func));
            EXPECT_TRUE(result.ok)
                << "feat=" << feat << " rpb=" << rpb << "\n"
                << verify::formatDiagnostics(result);
        }
    }
}

TEST(Verify, SpmmHybBucketsProveCleanSymbolically)
{
    format::Hyb hyb = format::hybFromCsr(smallCsr(), 1, 1);
    auto plans = core::compileSpmmHybFuncs(hyb, 48, 32);
    ASSERT_FALSE(plans.empty());
    for (const auto &plan : plans) {
        verify::VerifyContext ctx = csrSymbolicFacts(plan.func);
        idxFact(&ctx, core::ellRowIndicesParam(plan.suffix),
                param(plan.func, "m"));
        idxFact(&ctx, core::ellColIndicesParam(plan.suffix),
                param(plan.func, "n"));
        auto result = verify::verifyFunc(plan.func, ctx);
        EXPECT_TRUE(result.ok) << "bucket " << plan.suffix << "\n"
                               << verify::formatDiagnostics(result);
    }
}

TEST(Verify, SddmmProvesCleanSymbolically)
{
    for (int64_t feat : {48, 37}) {
        ir::PrimFunc func =
            core::compileSddmmFunc(feat, core::SddmmSchedule());
        auto result = verify::verifyFunc(func, csrSymbolicFacts(func));
        EXPECT_TRUE(result.ok) << "feat=" << feat << "\n"
                               << verify::formatDiagnostics(result);
    }
}

TEST(Verify, BsrSpmmProvesCleanSymbolically)
{
    ir::PrimFunc func = core::compileBsrSpmmFunc(4, 48, false);
    verify::VerifyContext ctx;
    indptrFact(&ctx, "JO_indptr", param(func, "nnzb"));
    idxFact(&ctx, "JO_indices", param(func, "nb"));
    auto result = verify::verifyFunc(func, ctx);
    EXPECT_TRUE(result.ok) << verify::formatDiagnostics(result);
}

TEST(Verify, BsrSddmmProvesCleanSymbolically)
{
    // The edge-space write B[(JO_indptr[io] + jo) * area + t] needs
    // the scaled monotone-window race rule: the sorted-indptr atom
    // carries coefficient blockSize^2, not 1.
    ir::PrimFunc func = core::compileBsrSddmmFunc(32, 64, false);
    verify::VerifyContext ctx;
    indptrFact(&ctx, "JO_indptr", param(func, "nnzb"));
    idxFact(&ctx, "JO_indices", param(func, "nb"));
    auto result = verify::verifyFunc(func, ctx);
    EXPECT_TRUE(result.ok) << verify::formatDiagnostics(result);
}

TEST(Verify, SrbcrsSpmmProvesCleanSymbolically)
{
    ir::PrimFunc func = core::compileSrbcrsSpmmFunc(8, 32, 48);
    verify::VerifyContext ctx;
    indptrFact(&ctx, "G_indptr", param(func, "total_groups"));
    idxFact(&ctx, "T_indices", param(func, "n"));
    auto result = verify::verifyFunc(func, ctx);
    EXPECT_TRUE(result.ok) << verify::formatDiagnostics(result);
}

TEST(Verify, EllRgmsProvesCleanSymbolically)
{
    ir::PrimFunc func =
        core::compileEllRgmsFunc(5, 4, 16, 32, "r0b2", false, 4);
    verify::VerifyContext ctx;
    idxFact(&ctx, "Ir0b2_indices", param(func, "m"));
    idxFact(&ctx, "Jr0b2_indices", param(func, "n"));
    auto result = verify::verifyFunc(func, ctx);
    EXPECT_TRUE(result.ok) << verify::formatDiagnostics(result);
}

// ---------------------------------------------------------------------
// Known-bad corpus. Each mutation reproduces a real bug class and
// must be rejected with the matching diagnostic category.
// ---------------------------------------------------------------------

/**
 * Strip every if-guard whose condition mentions `needle` — removing
 * the split-tail spatial guard exactly reproduces the historic
 * cacheWrite missing-guard bug on pre-fix IR.
 */
class GuardStripper : public ir::StmtMutator
{
  public:
    explicit GuardStripper(std::string needle)
        : needle_(std::move(needle))
    {}

  protected:
    ir::Stmt
    mutateIfThenElse(const ir::IfThenElseNode *op,
                     const ir::Stmt &s) override
    {
        for (const ir::VarNode *var : ir::collectVars(op->cond)) {
            if (var->name == needle_) {
                return mutateStmt(op->thenBody);
            }
        }
        return StmtMutator::mutateIfThenElse(op, s);
    }

  private:
    std::string needle_;
};

/** Clobber every store to `buffer` to land on one fixed location. */
class StoreIndexClobber : public ir::StmtMutator
{
  public:
    explicit StoreIndexClobber(std::string buffer)
        : buffer_(std::move(buffer))
    {}

  protected:
    ir::Stmt
    mutateBufferStore(const ir::BufferStoreNode *op,
                      const ir::Stmt &s) override
    {
        if (op->buffer->name != buffer_) {
            return StmtMutator::mutateBufferStore(op, s);
        }
        return ir::bufferStore(op->buffer, {ir::intImm(0)}, op->value);
    }

  private:
    std::string buffer_;
};

TEST(VerifyCorpus, DroppedSpatialGuardIsOutOfBounds)
{
    // feat=37 is not a multiple of the threadX split, so the tail
    // guard is load-bearing; dropping it must not verify.
    ir::PrimFunc func =
        core::compileSpmmCsrFunc(37, core::SpmmSchedule());
    ir::PrimFunc bad = ir::copyFunc(func);
    GuardStripper strip("feat_size");
    bad->body = strip.mutateStmt(func->body);

    auto result = verify::verifyFunc(bad, csrSymbolicFacts(bad));
    ASSERT_FALSE(result.ok);
    EXPECT_TRUE(hasCategory(result, verify::DiagCategory::kOutOfBounds))
        << verify::formatDiagnostics(result);
}

TEST(VerifyCorpus, DivisibleFeatSurvivesGuardStripOnlyBecauseProvable)
{
    // Control for the corpus itself: when feat divides the split and
    // the verifier knows it (the engine always declares the concrete
    // feat), the guard is redundant and stripping it stays provably
    // safe — the rejection above is about the tail, not stripping.
    ir::PrimFunc func =
        core::compileSpmmCsrFunc(32, core::SpmmSchedule());
    ir::PrimFunc bad = ir::copyFunc(func);
    GuardStripper strip("feat_size");
    bad->body = strip.mutateStmt(func->body);

    verify::VerifyContext ctx = csrSymbolicFacts(bad);
    ctx.scalar("feat_size", 32);
    auto result = verify::verifyFunc(bad, ctx);
    EXPECT_TRUE(result.ok) << verify::formatDiagnostics(result);
}

TEST(VerifyCorpus, EmptyWriteSetSpansRejected)
{
    ir::PrimFunc func =
        core::compileSpmmCsrFunc(32, core::SpmmSchedule());
    verify::VerifyContext ctx = csrSymbolicFacts(func);
    std::vector<int32_t> rows = {0, 2, 4};
    verify::AccumWriteSet set;
    set.buffer = "C";
    set.wholeArray = false;
    set.spans = {}; // claims the kernel writes nothing
    set.rows = &rows;
    set.rowWidth = 32;
    ctx.hasAccumSpec = true;
    ctx.accums.push_back(set);

    auto result = verify::verifyFunc(func, ctx);
    ASSERT_FALSE(result.ok);
    EXPECT_TRUE(
        hasCategory(result, verify::DiagCategory::kWriteSetViolation))
        << verify::formatDiagnostics(result);
    EXPECT_FALSE(hasCategory(result, verify::DiagCategory::kParallelRace))
        << verify::formatDiagnostics(result);
}

TEST(VerifyCorpus, StaleWriteSetSpansRejected)
{
    ir::PrimFunc func =
        core::compileSpmmCsrFunc(32, core::SpmmSchedule());
    verify::VerifyContext ctx = csrSymbolicFacts(func);
    std::vector<int32_t> rows = {0, 2, 4};
    verify::AccumWriteSet set;
    set.buffer = "C";
    set.wholeArray = false;
    // Stale spans from a previous (shifted) row set: row 4 writes
    // [128, 160) which no declared span covers.
    set.spans = {{0, 96}};
    set.rows = &rows;
    set.rowWidth = 32;
    ctx.hasAccumSpec = true;
    ctx.accums.push_back(set);

    auto result = verify::verifyFunc(func, ctx);
    ASSERT_FALSE(result.ok);
    EXPECT_TRUE(
        hasCategory(result, verify::DiagCategory::kWriteSetViolation))
        << verify::formatDiagnostics(result);
}

TEST(VerifyCorpus, DuplicateRowsWithoutExclusiveIsRace)
{
    ir::PrimFunc func =
        core::compileSpmmCsrFunc(32, core::SpmmSchedule());
    verify::VerifyContext ctx = csrSymbolicFacts(func);
    std::vector<int32_t> rows = {1, 1, 2}; // split row, both halves
    verify::AccumWriteSet set;
    set.buffer = "C";
    set.wholeArray = false;
    set.spans = {{32, 96}};
    set.rows = &rows;
    set.rowWidth = 32;
    ctx.hasAccumSpec = true;
    ctx.accums.push_back(set);

    ctx.kernelExclusive = false;
    auto racy = verify::verifyFunc(func, ctx);
    ASSERT_FALSE(racy.ok);
    EXPECT_TRUE(hasCategory(racy, verify::DiagCategory::kParallelRace))
        << verify::formatDiagnostics(racy);

    // The exclusive marking is exactly what licenses duplicate rows:
    // the same spec with the marking carries no race diagnostic.
    ctx.kernelExclusive = true;
    auto exclusive = verify::verifyFunc(func, ctx);
    EXPECT_FALSE(
        hasCategory(exclusive, verify::DiagCategory::kParallelRace))
        << verify::formatDiagnostics(exclusive);
}

TEST(VerifyCorpus, SeededParallelRaceRejected)
{
    ir::PrimFunc func =
        core::compileSpmmCsrFunc(32, core::SpmmSchedule());
    ir::PrimFunc bad = ir::copyFunc(func);
    StoreIndexClobber clobber("C");
    bad->body = clobber.mutateStmt(func->body);

    // Concrete scalar facts keep C[0] trivially in bounds, isolating
    // the race: every blockIdx iteration now folds into one location.
    verify::VerifyContext ctx = csrSymbolicFacts(bad);
    ctx.scalar("m", 8);
    ctx.scalar("n", 8);
    ctx.scalar("nnz", 12);
    ctx.scalar("feat_size", 32);

    auto result = verify::verifyFunc(bad, ctx);
    ASSERT_FALSE(result.ok);
    EXPECT_TRUE(hasCategory(result, verify::DiagCategory::kParallelRace))
        << verify::formatDiagnostics(result);
}

// ---------------------------------------------------------------------
// Engine integration: verification happens once, at build, and the
// verdict rides the cached artifact.
// ---------------------------------------------------------------------

TEST(VerifyEngine, VerdictComputedOnceAndCached)
{
    EngineOptions options;
    options.verifyArtifacts = true;
    Engine eng(options);

    Csr a = randomCsr(30, 25, 0.15, 3);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 4);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());

    auto first = eng.spmmCsr(a, feat, &b, &c);
    EXPECT_FALSE(first.cacheHit);
    auto cold = eng.cacheStats();
    EXPECT_GE(cold.verifiedKernels, 1u);
    EXPECT_EQ(cold.verifyFailures, 0u);

    c.zero();
    auto second = eng.spmmCsr(a, feat, &b, &c);
    EXPECT_TRUE(second.cacheHit);
    auto warm = eng.cacheStats();
    // Warm hit re-uses the cached verdict: no re-proving.
    EXPECT_EQ(warm.verifiedKernels, cold.verifiedKernels);
    EXPECT_EQ(warm.verifyMs, cold.verifyMs);
}

TEST(VerifyEngine, HybDispatchVerifiesEveryBucketKernel)
{
    EngineOptions options;
    options.verifyArtifacts = true;
    Engine eng(options);

    Csr a = randomCsr(64, 48, 0.12, 11);
    int64_t feat = 24;
    auto b_host = randomVector(a.cols * feat, 5);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());

    eng.spmmHyb(a, feat, &b, &c);
    auto stats = eng.cacheStats();
    // A hyb artifact holds one kernel per non-empty bucket.
    EXPECT_GE(stats.verifiedKernels, 2u);
    EXPECT_EQ(stats.verifyFailures, 0u);
}

TEST(VerifyEngine, DisabledVerificationSkipsProofs)
{
    EngineOptions options;
    options.verifyArtifacts = false;
    Engine eng(options);

    Csr a = randomCsr(30, 25, 0.15, 3);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 4);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());

    eng.spmmCsr(a, feat, &b, &c);
    auto stats = eng.cacheStats();
    EXPECT_EQ(stats.verifiedKernels, 0u);
    EXPECT_EQ(stats.verifyMs, 0.0);
}

} // namespace
} // namespace sparsetir
