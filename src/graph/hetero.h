/**
 * @file
 * Synthetic heterogeneous graphs standing in for the paper's RGCN
 * datasets (Table 2): multiple edge types, per-relation adjacency.
 */

#ifndef SPARSETIR_GRAPH_HETERO_H_
#define SPARSETIR_GRAPH_HETERO_H_

#include <string>
#include <vector>

#include "format/relational.h"

namespace sparsetir {
namespace graph {

/** One Table 2 heterograph configuration. */
struct HeteroSpec
{
    std::string name;
    int64_t paperNodes;
    int64_t paperEdges;
    int numEtypes;
    int64_t nodes;
    int64_t edges;
    /** Paper-reported %padding for 3D hyb (Table 2). */
    double paperPaddingPct;
};

/** The five Table 2 heterographs. */
std::vector<HeteroSpec> table2Heterographs();

HeteroSpec heteroSpec(const std::string &name);

/**
 * Generate the per-relation adjacency: edges are split across
 * relations with a Zipf-like relation popularity (a few relations
 * carry most edges, as in real knowledge graphs), power-law rows
 * within each relation.
 */
format::RelationalCsr generateHetero(const HeteroSpec &spec,
                                     uint64_t seed = 42);

} // namespace graph
} // namespace sparsetir

#endif // SPARSETIR_GRAPH_HETERO_H_
