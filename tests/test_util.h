/**
 * @file
 * Helpers shared by the GoogleTest suites: deterministic random data
 * and the bitwise-equality predicate the reproducibility contract is
 * stated in. One definition, so what "bitwise identical" means cannot
 * drift between suites.
 */

#ifndef SPARSETIR_TESTS_TEST_UTIL_H_
#define SPARSETIR_TESTS_TEST_UTIL_H_

#include <cstring>
#include <vector>

#include "runtime/ndarray.h"
#include "support/rng.h"

namespace sparsetir {
namespace testutil {

inline std::vector<float>
randomVector(int64_t size, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> out(static_cast<size_t>(size));
    for (auto &v : out) {
        v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
    }
    return out;
}

/** Bitwise comparison over the arrays' raw storage. */
inline bool
bitwiseEqual(const runtime::NDArray &a, const runtime::NDArray &b)
{
    return a.numel() == b.numel() &&
           std::memcmp(a.rawData(), b.rawData(),
                       static_cast<size_t>(a.numel()) *
                           a.elemBytes()) == 0;
}

} // namespace testutil
} // namespace sparsetir

#endif // SPARSETIR_TESTS_TEST_UTIL_H_
