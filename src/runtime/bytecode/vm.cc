#include "runtime/bytecode/vm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "runtime/ndarray.h"
#include "support/logging.h"

namespace sparsetir {
namespace runtime {
namespace bytecode {

namespace {

/** Resolved storage of one slot (parameter array or scratch). */
struct SlotRt
{
    unsigned char *base = nullptr;
    int64_t numel = 0;
    ElemKind kind = ElemKind::kF32;
    int ebytes = 4;
    bool bound = false;
    /**
     * Per-dispatch rebasing (RunOptions::offsetViews): when set,
     * every access translates its absolute offset through the view
     * into the packed storage bound to this slot. Null for all but
     * privatized accumulator slots, so the hot path pays one
     * predictable branch.
     */
    const OffsetView *view = nullptr;
};

/**
 * Reusable execution state, leased per run from a thread-local arena.
 *
 * A fused task-graph dispatch executes many small (request x kernel x
 * grid-chunk) units per call, each a fresh VM run; constructing the
 * register files, slot table and scratch vectors per unit made heap
 * churn a visible per-unit cost. The arena keeps its capacity across
 * runs on the same thread, so steady-state execution allocates
 * nothing. Contents are reinitialized per run exactly as the old
 * per-run construction did (registers zeroed, slots cleared, scratch
 * zero-assigned by kAlloc), so results are unchanged bitwise.
 */
struct MachineStorage
{
    std::vector<int64_t> iregs;
    std::vector<double> fregs;
    std::vector<SlotRt> slots;
    std::vector<std::vector<unsigned char>> scratch;
    /** Guards against reentrant execute() clobbering a live run. */
    bool inUse = false;
};

struct Machine
{
    const Program &prog;
    std::vector<int64_t> &iregs;
    std::vector<double> &fregs;
    std::vector<SlotRt> &slots;
    /** Backing storage of scratch slots (index - numParamSlots). */
    std::vector<std::vector<unsigned char>> &scratch;
    bool windowed = false;
    int64_t blockBegin = 0;
    int64_t blockEnd = 0;

    Machine(const Program &p, MachineStorage &store)
        : prog(p), iregs(store.iregs), fregs(store.fregs),
          slots(store.slots), scratch(store.scratch)
    {
        ICHECK(!store.inUse)
            << "reentrant bytecode execution on one thread";
        store.inUse = true;
        iregs.assign(static_cast<size_t>(prog.numIRegs), 0);
        fregs.assign(static_cast<size_t>(prog.numFRegs), 0.0);
        slots.assign(prog.slots.size(), SlotRt());
        size_t num_scratch =
            prog.slots.size() -
            static_cast<size_t>(prog.numParamSlots);
        // Only grow: surviving inner vectors keep their capacity for
        // the next run's kAlloc, which zero-assigns before use.
        if (scratch.size() < num_scratch) {
            scratch.resize(num_scratch);
        }
        store_ = &store;
    }

    ~Machine() { store_->inUse = false; }

  private:
    MachineStorage *store_ = nullptr;

  public:

    /**
     * Access fault diagnosis, off the hot path. Unbound slots carry
     * numel 0, so the hot path needs one unsigned range compare per
     * access; this cold function reconstructs which invariant broke.
     */
    [[noreturn]] void
    faultAccess(int32_t index, int64_t offset) const
    {
        const SlotRt &s = slots[static_cast<size_t>(index)];
        const std::string &name =
            prog.slots[static_cast<size_t>(index)].name;
        ICHECK(s.bound) << "no storage bound for buffer '" << name
                        << "'";
        ICHECK_GE(offset, 0) << "negative offset into " << name;
        ICHECK(false) << "offset " << offset
                      << " out of bounds for buffer '" << name
                      << "' (numel " << s.numel << ")";
        std::abort();  // unreachable; ICHECK throws
    }

    /** Window fault diagnosis, off the hot path. */
    [[noreturn]] void
    faultWindow(int32_t index, int64_t offset) const
    {
        ICHECK(false)
            << "offset " << offset << " of buffer '"
            << prog.slots[static_cast<size_t>(index)].name
            << "' lies outside its rebased window (write-set spans "
               "must cover every touched element)";
        std::abort();  // unreachable; ICHECK throws
    }

    /**
     * Resolve a slot for an access at `offset`, translating rebased
     * slots into their packed storage (offset is updated in place).
     */
    const SlotRt &
    slotAt(int32_t index, int64_t &offset) const
    {
        const SlotRt &s = slots[static_cast<size_t>(index)];
        if (s.view != nullptr) {
            int64_t packed = s.view->translate(offset);
            if (packed < 0) {
                faultWindow(index, offset);
            }
            offset = packed;
        }
        if (static_cast<uint64_t>(offset) >=
            static_cast<uint64_t>(s.numel)) {
            faultAccess(index, offset);
        }
        return s;
    }

    int64_t
    loadInt(const SlotRt &s, int64_t offset, int32_t slot) const
    {
        const unsigned char *p =
            s.base + static_cast<size_t>(offset) * s.ebytes;
        switch (s.kind) {
          case ElemKind::kI32: {
            int32_t v;
            std::memcpy(&v, p, 4);
            return v;
          }
          case ElemKind::kI64: {
            int64_t v;
            std::memcpy(&v, p, 8);
            return v;
          }
          case ElemKind::kI16: {
            int16_t v;
            std::memcpy(&v, p, 2);
            return v;
          }
          case ElemKind::kI8: {
            int8_t v;
            std::memcpy(&v, p, 1);
            return v;
          }
          case ElemKind::kBool:
            return *p != 0;
          default:
            ICHECK(false)
                << "integer access to float buffer '"
                << prog.slots[static_cast<size_t>(slot)].name << "'";
        }
        return 0;
    }

    void
    storeInt(const SlotRt &s, int64_t offset, int64_t value,
             int32_t slot) const
    {
        unsigned char *p =
            s.base + static_cast<size_t>(offset) * s.ebytes;
        switch (s.kind) {
          case ElemKind::kI32: {
            int32_t v = static_cast<int32_t>(value);
            std::memcpy(p, &v, 4);
            break;
          }
          case ElemKind::kI64:
            std::memcpy(p, &value, 8);
            break;
          case ElemKind::kI16: {
            int16_t v = static_cast<int16_t>(value);
            std::memcpy(p, &v, 2);
            break;
          }
          case ElemKind::kI8: {
            int8_t v = static_cast<int8_t>(value);
            std::memcpy(p, &v, 1);
            break;
          }
          case ElemKind::kBool:
            *p = value != 0 ? 1 : 0;
            break;
          default:
            ICHECK(false)
                << "integer access to float buffer '"
                << prog.slots[static_cast<size_t>(slot)].name << "'";
        }
    }

    double
    loadFloat(const SlotRt &s, int64_t offset, int32_t slot) const
    {
        const unsigned char *p =
            s.base + static_cast<size_t>(offset) * s.ebytes;
        if (s.kind == ElemKind::kF32) {
            float v;
            std::memcpy(&v, p, 4);
            return v;
        }
        ICHECK(s.kind == ElemKind::kF64)
            << "float access to integer buffer '"
            << prog.slots[static_cast<size_t>(slot)].name << "'";
        double v;
        std::memcpy(&v, p, 8);
        return v;
    }

    void
    storeFloat(const SlotRt &s, int64_t offset, double value,
               int32_t slot) const
    {
        unsigned char *p =
            s.base + static_cast<size_t>(offset) * s.ebytes;
        if (s.kind == ElemKind::kF32) {
            // Round to storage width, like NDArray::setFloat.
            float v = static_cast<float>(value);
            std::memcpy(p, &v, 4);
            return;
        }
        ICHECK(s.kind == ElemKind::kF64)
            << "float access to integer buffer '"
            << prog.slots[static_cast<size_t>(slot)].name << "'";
        std::memcpy(p, &value, 8);
    }

    void
    exec()
    {
        const Instr *code = prog.code.data();
        // Local copies keep the register files in machine registers:
        // byte stores through slot pointers may alias the vectors'
        // control blocks, which would otherwise force a reload of
        // data() on every instruction.
        int64_t *const ir = iregs.data();
        double *const fr = fregs.data();
        size_t pc = 0;
        for (;;) {
            const Instr &in = code[pc];
            switch (in.op) {
              case Op::kJump:
                pc = static_cast<size_t>(in.imm);
                continue;
              case Op::kJumpIfZero:
                if (ir[in.a] == 0) {
                    pc = static_cast<size_t>(in.imm);
                    continue;
                }
                break;
              case Op::kJumpIfNonZero:
                if (ir[in.a] != 0) {
                    pc = static_cast<size_t>(in.imm);
                    continue;
                }
                break;
              case Op::kBranchGE:
                if (ir[in.a] >= ir[in.b]) {
                    pc = static_cast<size_t>(in.imm);
                    continue;
                }
                break;
              case Op::kBlockWindow: {
                int64_t mn = ir[in.c];
                int64_t ext = ir[in.d];
                int64_t lo = mn;
                int64_t hi = mn + ext;
                if (windowed) {
                    lo = mn + std::max<int64_t>(blockBegin, 0);
                    hi = std::min(hi, mn + blockEnd);
                }
                ir[in.a] = lo;
                ir[in.b] = hi;
                break;
              }
              case Op::kHalt:
                return;

              case Op::kIConst:
                ir[in.a] = in.imm;
                break;
              case Op::kIMov:
                ir[in.a] = ir[in.b];
                break;
              case Op::kIAdd:
                ir[in.a] = ir[in.b] + ir[in.c];
                break;
              case Op::kISub:
                ir[in.a] = ir[in.b] - ir[in.c];
                break;
              case Op::kIMul:
                ir[in.a] = ir[in.b] * ir[in.c];
                break;
              case Op::kIFloorDiv:
                ir[in.a] = floordivInt(ir[in.b], ir[in.c]);
                break;
              case Op::kIFloorMod:
                ir[in.a] =
                    ir[in.b] -
                    floordivInt(ir[in.b], ir[in.c]) * ir[in.c];
                break;
              case Op::kIMin:
                ir[in.a] = std::min(ir[in.b], ir[in.c]);
                break;
              case Op::kIMax:
                ir[in.a] = std::max(ir[in.b], ir[in.c]);
                break;
              case Op::kIAddImm:
                ir[in.a] = ir[in.b] + in.imm;
                break;
              case Op::kICmpEQ:
                ir[in.a] = ir[in.b] == ir[in.c] ? 1 : 0;
                break;
              case Op::kICmpNE:
                ir[in.a] = ir[in.b] != ir[in.c] ? 1 : 0;
                break;
              case Op::kICmpLT:
                ir[in.a] = ir[in.b] < ir[in.c] ? 1 : 0;
                break;
              case Op::kICmpLE:
                ir[in.a] = ir[in.b] <= ir[in.c] ? 1 : 0;
                break;
              case Op::kICmpGT:
                ir[in.a] = ir[in.b] > ir[in.c] ? 1 : 0;
                break;
              case Op::kICmpGE:
                ir[in.a] = ir[in.b] >= ir[in.c] ? 1 : 0;
                break;
              case Op::kIBool:
                ir[in.a] = ir[in.b] != 0 ? 1 : 0;
                break;
              case Op::kIEqz:
                ir[in.a] = ir[in.b] == 0 ? 1 : 0;
                break;
              case Op::kIAbs:
                ir[in.a] = std::llabs(ir[in.b]);
                break;

              case Op::kFConst: {
                double v;
                std::memcpy(&v, &in.imm, sizeof(v));
                fr[in.a] = v;
                break;
              }
              case Op::kFMov:
                fr[in.a] = fr[in.b];
                break;
              case Op::kFAdd:
                fr[in.a] = fr[in.b] + fr[in.c];
                break;
              case Op::kFSub:
                fr[in.a] = fr[in.b] - fr[in.c];
                break;
              case Op::kFMul:
                fr[in.a] = fr[in.b] * fr[in.c];
                break;
              case Op::kFDiv:
                fr[in.a] = fr[in.b] / fr[in.c];
                break;
              case Op::kFMin:
                fr[in.a] = std::min(fr[in.b], fr[in.c]);
                break;
              case Op::kFMax:
                fr[in.a] = std::max(fr[in.b], fr[in.c]);
                break;
              case Op::kFCmpEQ:
                ir[in.a] = fr[in.b] == fr[in.c] ? 1 : 0;
                break;
              case Op::kFCmpNE:
                ir[in.a] = fr[in.b] != fr[in.c] ? 1 : 0;
                break;
              case Op::kFCmpLT:
                ir[in.a] = fr[in.b] < fr[in.c] ? 1 : 0;
                break;
              case Op::kFCmpLE:
                ir[in.a] = fr[in.b] <= fr[in.c] ? 1 : 0;
                break;
              case Op::kFCmpGT:
                ir[in.a] = fr[in.b] > fr[in.c] ? 1 : 0;
                break;
              case Op::kFCmpGE:
                ir[in.a] = fr[in.b] >= fr[in.c] ? 1 : 0;
                break;
              case Op::kFAbs:
                fr[in.a] = std::fabs(fr[in.b]);
                break;
              case Op::kFExp:
                fr[in.a] = std::exp(fr[in.b]);
                break;
              case Op::kFLog:
                fr[in.a] = std::log(fr[in.b]);
                break;
              case Op::kFSqrt:
                fr[in.a] = std::sqrt(fr[in.b]);
                break;

              case Op::kCastIF:
                fr[in.a] = static_cast<double>(ir[in.b]);
                break;
              case Op::kCastFI:
                ir[in.a] = static_cast<int64_t>(fr[in.b]);
                break;

              case Op::kLoadI: {
                int64_t off = ir[in.c];
                const SlotRt &s = slotAt(in.b, off);
                ir[in.a] = loadInt(s, off, in.b);
                break;
              }
              case Op::kLoadF: {
                int64_t off = ir[in.c];
                const SlotRt &s = slotAt(in.b, off);
                fr[in.a] = loadFloat(s, off, in.b);
                break;
              }
              case Op::kStoreI: {
                int64_t off = ir[in.c];
                const SlotRt &s = slotAt(in.b, off);
                storeInt(s, off, ir[in.a], in.b);
                break;
              }
              case Op::kStoreF: {
                int64_t off = ir[in.c];
                const SlotRt &s = slotAt(in.b, off);
                storeFloat(s, off, fr[in.a], in.b);
                break;
              }
              case Op::kLowerBound:
              case Op::kUpperBound: {
                const SlotRt &s = slots[static_cast<size_t>(in.b)];
                ICHECK(s.bound)
                    << "no storage bound for buffer '"
                    << prog.slots[static_cast<size_t>(in.b)].name
                    << "'";
                ICHECK(s.view == nullptr)
                    << "binary search over rebased buffer '"
                    << prog.slots[static_cast<size_t>(in.b)].name
                    << "'";
                int64_t lo = ir[in.c];
                int64_t hi = ir[in.d];
                int64_t val = ir[in.imm];
                ICHECK_GE(lo, 0);
                ICHECK_LE(hi, s.numel);
                bool upper = in.op == Op::kUpperBound;
                while (lo < hi) {
                    int64_t mid = lo + (hi - lo) / 2;
                    int64_t elem = loadInt(s, mid, in.b);
                    bool go_right = upper ? elem <= val : elem < val;
                    if (go_right) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                ir[in.a] = lo;
                break;
              }
              case Op::kAtomicAddI: {
                int64_t off = ir[in.c];
                const SlotRt &s = slotAt(in.b, off);
                int64_t old = loadInt(s, off, in.b);
                storeInt(s, off, old + ir[in.d], in.b);
                ir[in.a] = old;
                break;
              }
              case Op::kAtomicAddF: {
                int64_t off = ir[in.c];
                const SlotRt &s = slotAt(in.b, off);
                double old = loadFloat(s, off, in.b);
                storeFloat(s, off, old + fr[in.d], in.b);
                fr[in.a] = old;
                break;
              }
              case Op::kAlloc: {
                ElemKind kind = static_cast<ElemKind>(in.a);
                int64_t n = ir[in.c];
                ICHECK_GE(n, 0) << "negative scratch allocation";
                size_t bytes = static_cast<size_t>(n) *
                               elemKindBytes(kind);
                auto &store = scratch[static_cast<size_t>(
                    in.b - prog.numParamSlots)];
                // assign() reuses capacity across loop iterations and
                // zero-fills, matching a fresh NDArray per entry.
                store.assign(bytes, 0);
                SlotRt &s = slots[static_cast<size_t>(in.b)];
                s.base = store.data();
                s.numel = n;
                s.kind = kind;
                s.ebytes = elemKindBytes(kind);
                s.bound = true;
                break;
              }
            }
            ++pc;
        }
    }
};

} // namespace

void
execute(const Program &program, const Bindings &bindings,
        const RunOptions &options)
{
    if (options.blockEnd >= 0) {
        USER_CHECK(program.blockWindowPc >= 0)
            << "block-windowed execution of '" << program.name
            << "': no blockIdx.x-bound loop";
    }
    static thread_local MachineStorage tls_machine_storage;
    Machine m(program, tls_machine_storage);
    m.windowed = options.blockEnd >= 0;
    m.blockBegin = options.blockBegin;
    m.blockEnd = options.blockEnd;
    for (int32_t i = 0; i < program.numParamSlots; ++i) {
        auto it = bindings.arrays.find(program.slots[i].name);
        if (it == bindings.arrays.end()) {
            continue;  // lazy: faults only if an instruction touches it
        }
        NDArray *arr = it->second;
        SlotRt &s = m.slots[static_cast<size_t>(i)];
        s.base = static_cast<unsigned char *>(arr->rawData());
        s.numel = arr->numel();
        s.kind = elemKindOfDtype(arr->dtype());
        s.ebytes = arr->elemBytes();
        s.bound = true;
    }
    // Rebased slots: accesses of these parameters translate through
    // the view into the packed array bound above (typically a
    // write-set-sized privatization buffer).
    for (const BufferView &bv : options.offsetViews) {
        for (int32_t i = 0; i < program.numParamSlots; ++i) {
            if (program.slots[static_cast<size_t>(i)].name ==
                bv.name) {
                m.slots[static_cast<size_t>(i)].view = bv.view;
            }
        }
    }
    for (const ScalarParam &sp : program.scalarParams) {
        auto it = bindings.scalars.find(sp.name);
        ICHECK(it != bindings.scalars.end())
            << "unbound variable '" << sp.name << "'";
        m.iregs[sp.reg] = it->second;
    }
    for (const auto &[reg, value] : program.iconsts) {
        m.iregs[static_cast<size_t>(reg)] = value;
    }
    for (const auto &[reg, bits] : program.fconsts) {
        std::memcpy(&m.fregs[static_cast<size_t>(reg)], &bits,
                    sizeof(double));
    }
    m.exec();
}

} // namespace bytecode
} // namespace runtime
} // namespace sparsetir
