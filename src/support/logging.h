/**
 * @file
 * Error handling and logging utilities for SparseTIR.
 *
 * Follows the gem5 convention of separating internal invariant failures
 * (ICHECK, analogous to panic) from user-facing errors (userError,
 * analogous to fatal).
 */

#ifndef SPARSETIR_SUPPORT_LOGGING_H_
#define SPARSETIR_SUPPORT_LOGGING_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace sparsetir {

/** Exception thrown when an internal invariant is violated. */
class InternalError : public std::runtime_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown for user-level misuse of the API. */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

/**
 * Accumulates a message and throws on destruction of the holder.
 * Used by the ICHECK family of macros.
 */
class LogFatal
{
  public:
    LogFatal(const char *file, int line, bool internal)
        : internal_(internal)
    {
        stream_ << file << ":" << line << ": ";
    }

    [[noreturn]] ~LogFatal() noexcept(false)
    {
        if (internal_) {
            throw InternalError(stream_.str());
        }
        throw UserError(stream_.str());
    }

    std::ostringstream &stream() { return stream_; }

  private:
    std::ostringstream stream_;
    bool internal_;
};

/** Sink for LOG(INFO)-style messages; writes to stderr on destruction. */
class LogMessage
{
  public:
    LogMessage(const char *file, int line);
    ~LogMessage();
    std::ostringstream &stream() { return stream_; }

  private:
    std::ostringstream stream_;
};

} // namespace detail

/** Internal invariant check; throws InternalError with message. */
#define ICHECK(cond)                                                        \
    if (!(cond))                                                            \
    ::sparsetir::detail::LogFatal(__FILE__, __LINE__, true).stream()        \
        << "Internal check failed: (" #cond ") "

#define ICHECK_EQ(a, b) ICHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICHECK_NE(a, b) ICHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICHECK_LT(a, b) ICHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICHECK_LE(a, b) ICHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICHECK_GT(a, b) ICHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICHECK_GE(a, b) ICHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/** User-facing error; throws UserError with message. */
#define USER_CHECK(cond)                                                    \
    if (!(cond))                                                            \
    ::sparsetir::detail::LogFatal(__FILE__, __LINE__, false).stream()       \
        << "Error: "

/** Informational logging to stderr. */
#define LOG_INFO ::sparsetir::detail::LogMessage(__FILE__, __LINE__).stream()

} // namespace sparsetir

#endif // SPARSETIR_SUPPORT_LOGGING_H_
