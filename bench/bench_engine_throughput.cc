/**
 * @file
 * Serving-path benchmark for the execution engine: what the compile
 * cache removes from the dispatch path, and what the thread-pool
 * executor buys on multi-kernel requests.
 *
 * Three experiments over a >= 10k-row synthetic power-law graph:
 *
 *  1. Compile cache — cold dispatch (Stage I -> III compile +
 *     bucketing + bind + run) vs cached re-dispatch (value gather +
 *     bind + run). Reports total latency and the dispatch-path
 *     overhead (compile + bind) the cache eliminates; the overhead
 *     ratio is the serving claim (kernel execution itself is
 *     identical work in both cases and hardware-bound).
 *
 *  2. Parallel executor — hyb bucket kernels of one request executed
 *     with 1 vs 4 worker threads, results checked bitwise against
 *     the serial interpreter. Speedup tracks physical cores.
 *
 *  3. Sustained throughput — warm re-dispatch rate over a stream of
 *     value-varying requests on one cached structure.
 *
 *  4. Execution backend — warm dispatch latency of the bytecode VM
 *     vs the tree-walking interpreter on the same cached structure,
 *     bitwise-checked. This is the end-to-end serving win the
 *     compile cache alone cannot deliver; CI gates on the reported
 *     speedup (target >= 5x full-size, >= 3x FAST).
 *
 *  5. Batched multi-request dispatch — N in-flight requests (one
 *     cached artifact, private feature/output arrays) dispatched
 *     through spmmHybBatch vs the same N requests re-dispatched
 *     sequentially, bitwise-checked per request. Reports requests/s
 *     both ways plus the privatization-scratch high-water mark
 *     (span-sized leases vs the naive units x output bytes); the
 *     batched numbers ride in BENCH_JSON for trajectory tracking
 *     (informational — the CI gate stays on the backend speedup).
 *
 *  6. RGCN scratch high-water mark — one fused RGCN dispatch whose
 *     (relation, bucket) scatter units each touch a small row
 *     subset: the workload where span-sized privatization leases
 *     shrink scratch the most. Informational, in BENCH_JSON.
 *
 *  7. Fused task-graph dispatch — the same warm batched-hyb stream
 *     executed with EngineOptions::fusedDispatch on (one unit pool
 *     over every request x bucket x grid-chunk, no barrier between
 *     hyb buckets or requests) vs off (the barriered per-segment
 *     schedule), bitwise-checked per request. Reports req/s both
 *     ways plus the fused scratch peak; rides in BENCH_JSON for
 *     trajectory tracking (informational — no gate until two runs
 *     of trajectory exist).
 *
 *  8. Engine metrics snapshot — the observability registry's view of
 *     the session used by [1]/[3]: every named counter and gauge.
 *
 *  9. Warm-dispatch latency percentiles — per-op-kind p50/p95/p99
 *     from the engine's own engine.warm_dispatch_ms.<op> histograms
 *     over a stream of warm dispatches (spmm_csr, spmm_hyb,
 *     spmm_bsr). Emitted into BENCH_JSON as "warm_latency" for
 *     trajectory tracking (informational — no gate).
 *
 * 10. Graph compilation — whole-model dataflow graphs (sparse
 *     attention SDDMM -> scale -> masked-softmax -> SpMM, GraphSAGE
 *     aggregate -> update) dispatched warm as ONE fused kernel vs
 *     the per-node chain, bitwise-checked, with the scratch
 *     high-water mark both ways (the fused program materializes no
 *     intermediate). Req/s both ways ride in BENCH_JSON for
 *     trajectory tracking (informational — no gate).
 *
 * 11. Tiered execution — warm dispatch requests/s per op family
 *     (spmm_csr, spmm_hyb, spmm_bsr) across all three tiers:
 *     tree-walking interpreter, bytecode VM, and the native C tier
 *     (cc-compiled .so, promoted synchronously before measurement).
 *     All three tiers bitwise-checked against each other; the native
 *     tier's compile count / disk hits / total compile ms ride along
 *     in BENCH_JSON as "tiers" for trajectory tracking
 *     (informational — the hard gate stays on [4]).
 *
 * FAST=1 shrinks the graph for smoke runs. BENCH_JSON=<path> writes
 * the backend-comparison numbers as JSON for the CI perf gate and
 * trajectory tracking. TRACE_JSON=<path> (or SPARSETIR_TRACE=1)
 * enables the span recorder for the whole run and writes a Chrome
 * trace-event file loadable in Perfetto / chrome://tracing, plus a
 * self-time summary on stdout.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

#include "bench_util.h"
#include "core/pipeline.h"
#include "dfg/op_graph.h"
#include "engine/engine.h"
#include "format/bsr.h"
#include "graph/generator.h"
#include "model/attention.h"
#include "model/graphsage.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/rng.h"

using namespace sparsetir;
using runtime::NDArray;

namespace {

std::vector<float>
randomVector(int64_t size, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> out(size);
    for (auto &v : out) {
        v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
    }
    return out;
}

bool
bitwiseEqual(const NDArray &a, const NDArray &b)
{
    return a.numel() == b.numel() &&
           std::memcmp(a.rawData(), b.rawData(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

double
wallMs(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Engine throughput: compile cache + parallel executor");

    // Tracing covers the whole run when asked for: TRACE_JSON names
    // the Chrome-trace output; SPARSETIR_TRACE=1 alone traces too
    // (written to bench_trace.json).
    const char *trace_path_env = std::getenv("TRACE_JSON");
    if (trace_path_env != nullptr || observe::traceRequestedByEnv()) {
        observe::TraceRecorder::global().setEnabled(true);
    }

    int64_t nodes = benchutil::fastMode() ? 2000 : 10000;
    int64_t edges = benchutil::fastMode() ? 12000 : 120000;
    int64_t feat = 16;
    format::Csr g = graph::powerLawGraph(nodes, edges, 1.8, 5);
    std::printf("graph: %lld rows, %lld nnz (power-law), feat %lld\n",
                static_cast<long long>(g.rows),
                static_cast<long long>(g.nnz()),
                static_cast<long long>(feat));

    auto b_host = randomVector(g.cols * feat, 7);
    engine::HybConfig config;
    config.partitions = 4;

    // ------------------------------------------------------------------
    // 1. Compile cache: cold vs cached re-dispatch
    // ------------------------------------------------------------------
    std::printf("\n[1] compile cache (hyb(c=%d) SpMM)\n",
                config.partitions);
    engine::Engine eng(engine::EngineOptions{});
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({g.rows * feat}, ir::DataType::float32());

    engine::DispatchInfo cold;
    double cold_total =
        wallMs([&] { cold = eng.spmmHyb(g, feat, &b, &c, config); });

    constexpr int kWarmRounds = 5;
    engine::DispatchInfo warm;
    double warm_total = 0.0;
    for (int round = 0; round < kWarmRounds; ++round) {
        // Perturb values: the cache must serve any matrix with this
        // sparsity structure through the provenance gather.
        format::Csr g2 = g;
        float scale = 1.0f + 0.25f * static_cast<float>(round);
        for (auto &v : g2.values) {
            v *= scale;
        }
        c.zero();
        warm_total +=
            wallMs([&] { warm = eng.spmmHyb(g2, feat, &b, &c, config); });
    }
    warm_total /= kWarmRounds;

    std::printf("  cold:  total %8.2f ms  (compile %7.2f, bind %5.2f, "
                "kernels %8.2f ms, %d kernels)\n",
                cold_total, cold.compileMs, cold.bindMs, cold.kernelMs,
                cold.numKernels);
    std::printf("  warm:  total %8.2f ms  (compile %7.4f, bind %5.2f, "
                "kernels %8.2f ms, hit=%s)\n",
                warm_total, warm.compileMs, warm.bindMs, warm.kernelMs,
                warm.cacheHit ? "yes" : "no");
    double overhead_ratio =
        warm.dispatchOverheadMs() > 0.0
            ? cold.dispatchOverheadMs() / warm.dispatchOverheadMs()
            : 0.0;
    std::printf("  dispatch-path overhead (compile+bind): cold %.2f ms "
                "-> warm %.2f ms = %.1fx faster (target >= 10x)\n",
                cold.dispatchOverheadMs(), warm.dispatchOverheadMs(),
                overhead_ratio);
    std::printf("  end-to-end latency ratio (interpreter-bound): "
                "%.2fx\n",
                warm_total > 0.0 ? cold_total / warm_total : 0.0);

    // ------------------------------------------------------------------
    // 2. Parallel executor: 1 vs 4 workers, bitwise-checked
    // ------------------------------------------------------------------
    std::printf("\n[2] parallel hyb bucket execution (%u hardware "
                "threads available)\n",
                std::thread::hardware_concurrency());

    // Serial interpreter ground truth via the core pipeline.
    NDArray serial_c({g.rows * feat}, ir::DataType::float32());
    {
        auto shared = std::make_shared<core::BindingSet>();
        NDArray b_serial = NDArray::fromFloat(b_host);
        shared->external("B_data", &b_serial);
        shared->external("C_data", &serial_c);
        core::HybSpmm compiled = core::compileSpmmHyb(
            g, feat, config.partitions, config.bucketCapLog2, shared);
        for (auto &kernel : compiled.kernels) {
            kernel->execute();
        }
    }

    double time_1t = 0.0;
    for (int workers : {1, 4}) {
        engine::EngineOptions options;
        options.numThreads = workers;
        engine::Engine worker_eng(options);
        NDArray bw = NDArray::fromFloat(b_host);
        NDArray cw({g.rows * feat}, ir::DataType::float32());
        // Prime the cache so the measurement isolates execution.
        worker_eng.spmmHyb(g, feat, &bw, &cw, config);
        cw.zero();
        engine::DispatchInfo run_info;
        double elapsed = wallMs([&] {
            run_info = worker_eng.spmmHyb(g, feat, &bw, &cw, config);
        });
        bool exact = bitwiseEqual(serial_c, cw);
        std::printf("  %d worker(s): %8.2f ms   bitwise-equal to "
                    "serial interpreter: %s\n",
                    workers, elapsed, exact ? "yes" : "NO");
        if (workers == 1) {
            time_1t = elapsed;
        } else {
            std::printf("  speedup %d-thread vs 1-thread: %.2fx "
                        "(target > 1x on >= %d physical cores)\n",
                        workers, elapsed > 0.0 ? time_1t / elapsed : 0.0,
                        workers);
        }
    }

    // ------------------------------------------------------------------
    // 3. Sustained warm throughput
    // ------------------------------------------------------------------
    int rounds = benchutil::fastMode() ? 3 : 10;
    std::printf("\n[3] sustained warm re-dispatch (%d requests)\n",
                rounds);
    double stream_ms = wallMs([&] {
        for (int round = 0; round < rounds; ++round) {
            c.zero();
            eng.spmmHyb(g, feat, &b, &c, config);
        }
    });
    auto stats = eng.stats();
    std::printf("  %.2f req/s (%.2f ms/request)\n",
                1000.0 * rounds / stream_ms, stream_ms / rounds);
    std::printf("  session: %llu requests, %llu hits / %llu misses, "
                "compile %.1f ms total, exec %.1f ms total\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.cacheMisses),
                stats.totalCompileMs, stats.totalExecMs);

    // ------------------------------------------------------------------
    // 4. Execution backend: bytecode VM vs interpreter, warm
    // ------------------------------------------------------------------
    int backend_rounds = benchutil::fastMode() ? 3 : 5;
    std::printf("\n[4] warm dispatch by execution backend "
                "(%d rounds each)\n",
                backend_rounds);
    double backend_ms[2] = {0.0, 0.0};
    observe::LatencyHistogram backend_lat[2];
    NDArray backend_c[2] = {
        NDArray({g.rows * feat}, ir::DataType::float32()),
        NDArray({g.rows * feat}, ir::DataType::float32())};
    for (int which = 0; which < 2; ++which) {
        bool bytecode = which == 1;
        engine::EngineOptions options;
        options.backend = bytecode
                              ? runtime::Backend::kBytecode
                              : runtime::Backend::kInterpreter;
        engine::Engine backend_eng(options);
        NDArray bb = NDArray::fromFloat(b_host);
        // Prime the cache; the measured rounds are pure warm path
        // (the dispatch itself zeroes C — overwrite semantics).
        backend_eng.spmmHyb(g, feat, &bb, &backend_c[which], config);
        backend_ms[which] = benchutil::timedRoundsMs(
            backend_rounds,
            [&] {
                backend_eng.spmmHyb(g, feat, &bb, &backend_c[which],
                                    config);
            },
            &backend_lat[which]);
        observe::HistogramSnapshot lat =
            backend_lat[which].snapshot();
        std::printf("  %-12s %8.2f ms/request  (p50 %.2f / p99 %.2f "
                    "ms)\n",
                    bytecode ? "bytecode:" : "interpreter:",
                    backend_ms[which], lat.p50Ms, lat.p99Ms);
    }
    bool backend_equal = bitwiseEqual(backend_c[0], backend_c[1]);
    double backend_speedup =
        backend_ms[1] > 0.0 ? backend_ms[0] / backend_ms[1] : 0.0;
    std::printf("  speedup bytecode vs interpreter: %.2fx (target >= "
                "%dx), bitwise-identical outputs: %s\n",
                backend_speedup, benchutil::fastMode() ? 3 : 5,
                backend_equal ? "yes" : "NO");

    // ------------------------------------------------------------------
    // 5. Batched multi-request dispatch vs sequential re-dispatch
    // ------------------------------------------------------------------
    int batch_requests = benchutil::fastMode() ? 4 : 8;
    int batch_rounds = benchutil::fastMode() ? 3 : 5;
    std::printf("\n[5] batched dispatch: %d in-flight requests "
                "(%d rounds each way)\n",
                batch_requests, batch_rounds);
    std::vector<NDArray> batch_b;
    std::vector<NDArray> batch_c;
    std::vector<NDArray> seq_out;
    for (int i = 0; i < batch_requests; ++i) {
        batch_b.push_back(NDArray::fromFloat(
            randomVector(g.cols * feat, 100 + i)));
        batch_c.emplace_back(std::vector<int64_t>{g.rows * feat},
                             ir::DataType::float32());
        seq_out.emplace_back(std::vector<int64_t>{g.rows * feat},
                             ir::DataType::float32());
    }
    std::vector<engine::SpmmRequest> requests;
    for (int i = 0; i < batch_requests; ++i) {
        requests.push_back(engine::SpmmRequest{&batch_b[i],
                                               &batch_c[i]});
    }
    engine::Engine batch_eng(engine::EngineOptions{});
    engine::PreparedSpmmHyb prepared =
        batch_eng.prepareSpmmHyb(g, feat, config);  // prime cache

    // Fair baseline: the same prepared-handle path, one request at a
    // time — so the comparison isolates batching (cross-request
    // striping) from the cache-lookup and value-gather savings the
    // handle already provides to both sides.
    double sequential_ms = benchutil::timedRoundsMs(batch_rounds, [&] {
        for (int i = 0; i < batch_requests; ++i) {
            std::vector<engine::SpmmRequest> one = {
                engine::SpmmRequest{&batch_b[i], &seq_out[i]}};
            batch_eng.spmmHybBatch(prepared, one);
        }
    });

    double batched_ms = benchutil::timedRoundsMs(
        batch_rounds,
        [&] { batch_eng.spmmHybBatch(prepared, requests); });

    bool batch_equal = true;
    for (int i = 0; i < batch_requests; ++i) {
        batch_equal =
            batch_equal && bitwiseEqual(seq_out[i], batch_c[i]);
    }
    double sequential_rps =
        sequential_ms > 0.0 ? 1000.0 * batch_requests / sequential_ms
                            : 0.0;
    double batched_rps =
        batched_ms > 0.0 ? 1000.0 * batch_requests / batched_ms : 0.0;
    double batch_speedup =
        batched_ms > 0.0 ? sequential_ms / batched_ms : 0.0;
    std::printf("  sequential: %8.2f ms/batch  (%.1f req/s)\n",
                sequential_ms, sequential_rps);
    std::printf("  batched:    %8.2f ms/batch  (%.1f req/s)\n",
                batched_ms, batched_rps);
    std::printf("  batched vs sequential: %.2fx, per-request bitwise "
                "identical: %s\n",
                batch_speedup, batch_equal ? "yes" : "NO");

    // Privatization scratch high-water mark of one batched dispatch
    // (span-sized leases). Measured on a dedicated 4-worker session
    // so privatization engages even on single-core boxes (a size-1
    // pool runs serially and leases nothing). The naive figure is
    // what full-output leases would have peaked at: one output-sized
    // buffer per (request x kernel) unit.
    engine::EngineOptions scratch_options;
    scratch_options.numThreads = 4;
    engine::Engine scratch_eng(scratch_options);
    engine::PreparedSpmmHyb scratch_prepared =
        scratch_eng.prepareSpmmHyb(g, feat, config);
    scratch_eng.spmmHybBatch(scratch_prepared, requests);  // warm
    scratch_eng.resetScratchPeak();
    engine::BatchDispatchInfo peak_info =
        scratch_eng.spmmHybBatch(scratch_prepared, requests);
    engine::ScratchStats batch_scratch = scratch_eng.scratchStats();
    long long output_bytes = static_cast<long long>(g.rows) * feat *
                             static_cast<long long>(sizeof(float));
    long long naive_bytes = static_cast<long long>(batch_requests) *
                            peak_info.numKernels * output_bytes;
    std::printf("  scratch high-water mark: %.2f MB "
                "(naive full-output leases: %.2f MB = %d requests x "
                "%d kernels x %.2f MB)\n",
                batch_scratch.peakLeasedBytes / 1e6,
                naive_bytes / 1e6, batch_requests,
                peak_info.numKernels, output_bytes / 1e6);

    // ------------------------------------------------------------------
    // 6. RGCN scratch high-water mark (scatter units, span leases)
    // ------------------------------------------------------------------
    int64_t rg_nodes = benchutil::fastMode() ? 500 : 2000;
    int rg_relations = 3;
    std::printf("\n[6] rgcn scratch high-water mark (%lld nodes, %d "
                "relations)\n",
                static_cast<long long>(rg_nodes), rg_relations);
    format::RelationalCsr rgraph;
    rgraph.rows = rg_nodes;
    rgraph.cols = rg_nodes;
    for (int r = 0; r < rg_relations; ++r) {
        rgraph.relations.push_back(graph::powerLawGraph(
            rg_nodes, rg_nodes * 6, 1.8, 200 + r));
        rgraph.relations.back().cols = rg_nodes;
    }
    engine::EngineOptions rgcn_options;
    rgcn_options.numThreads = 4;  // privatization needs a real pool
    engine::Engine rgcn_eng(rgcn_options);
    NDArray rg_x =
        NDArray::fromFloat(randomVector(rg_nodes * feat, 210));
    NDArray rg_w = NDArray::fromFloat(randomVector(feat * feat, 211));
    NDArray rg_y({rg_nodes * feat}, ir::DataType::float32());
    rgcn_eng.rgcn(rgraph, feat, &rg_x, &rg_w, &rg_y);  // prime
    rgcn_eng.resetScratchPeak();
    rg_y.zero();
    engine::DispatchInfo rg_info =
        rgcn_eng.rgcn(rgraph, feat, &rg_x, &rg_w, &rg_y);
    engine::ScratchStats rg_scratch = rgcn_eng.scratchStats();
    long long rg_output_bytes = static_cast<long long>(rg_nodes) *
                                feat *
                                static_cast<long long>(sizeof(float));
    long long rg_naive_bytes =
        static_cast<long long>(rg_info.numKernels) * rg_output_bytes;
    std::printf("  %d scatter units: scratch peak %.2f MB (naive "
                "full-output leases: %.2f MB)\n",
                rg_info.numKernels,
                rg_scratch.peakLeasedBytes / 1e6,
                rg_naive_bytes / 1e6);

    // ------------------------------------------------------------------
    // 7. Fused task-graph dispatch vs barriered schedule (warm batch)
    // ------------------------------------------------------------------
    int fused_rounds = benchutil::fastMode() ? 3 : 5;
    std::printf("\n[7] fused task-graph dispatch: %d in-flight "
                "requests (%d rounds each way, 4 workers)\n",
                batch_requests, fused_rounds);
    std::vector<NDArray> fused_c;
    std::vector<NDArray> barriered_c;
    for (int i = 0; i < batch_requests; ++i) {
        fused_c.emplace_back(std::vector<int64_t>{g.rows * feat},
                             ir::DataType::float32());
        barriered_c.emplace_back(std::vector<int64_t>{g.rows * feat},
                                 ir::DataType::float32());
    }
    double sched_ms[2] = {0.0, 0.0};  // [0]=barriered, [1]=fused
    long long fused_scratch_peak = 0;
    for (int which = 0; which < 2; ++which) {
        bool fused = which == 1;
        engine::EngineOptions options;
        options.numThreads = 4;
        options.fusedDispatch = fused;
        engine::Engine eng(options);
        std::vector<engine::SpmmRequest> reqs;
        for (int i = 0; i < batch_requests; ++i) {
            reqs.push_back(engine::SpmmRequest{
                &batch_b[i], fused ? &fused_c[i] : &barriered_c[i]});
        }
        engine::PreparedSpmmHyb handle =
            eng.prepareSpmmHyb(g, feat, config);
        eng.spmmHybBatch(handle, reqs);  // warm
        eng.resetScratchPeak();
        sched_ms[which] = benchutil::timedRoundsMs(
            fused_rounds,
            [&] { eng.spmmHybBatch(handle, reqs); });
        if (fused) {
            fused_scratch_peak = static_cast<long long>(
                eng.scratchStats().peakLeasedBytes);
        }
        std::printf("  %-10s %8.2f ms/batch  (%.1f req/s)\n",
                    fused ? "fused:" : "barriered:", sched_ms[which],
                    sched_ms[which] > 0.0
                        ? 1000.0 * batch_requests / sched_ms[which]
                        : 0.0);
    }
    bool fused_equal = true;
    for (int i = 0; i < batch_requests; ++i) {
        fused_equal =
            fused_equal && bitwiseEqual(barriered_c[i], fused_c[i]) &&
            bitwiseEqual(seq_out[i], fused_c[i]);
    }
    double barriered_rps =
        sched_ms[0] > 0.0 ? 1000.0 * batch_requests / sched_ms[0]
                          : 0.0;
    double fused_rps =
        sched_ms[1] > 0.0 ? 1000.0 * batch_requests / sched_ms[1]
                          : 0.0;
    double fused_speedup =
        sched_ms[1] > 0.0 ? sched_ms[0] / sched_ms[1] : 0.0;
    std::printf("  fused vs barriered: %.2fx, bitwise identical to "
                "barriered AND sequential: %s\n",
                fused_speedup, fused_equal ? "yes" : "NO");
    std::printf("  fused scratch high-water mark: %.2f MB\n",
                fused_scratch_peak / 1e6);

    // ------------------------------------------------------------------
    // 8. Engine metrics snapshot (registry counters + gauges)
    // ------------------------------------------------------------------
    std::printf("\n[8] metrics snapshot of the [1]/[3] engine "
                "session\n");
    observe::MetricsSnapshot session_snap = eng.metricsSnapshot();
    for (const auto &kv : session_snap.counters) {
        std::printf("  counter %-28s %llu\n", kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second));
    }
    for (const auto &kv : session_snap.gauges) {
        std::printf("  gauge   %-28s %lld\n", kv.first.c_str(),
                    static_cast<long long>(kv.second));
    }

    // ------------------------------------------------------------------
    // 9. Warm-dispatch latency percentiles per op kind
    // ------------------------------------------------------------------
    int lat_rounds = benchutil::fastMode() ? 8 : 20;
    std::printf("\n[9] warm-dispatch latency percentiles (%d warm "
                "rounds per op)\n",
                lat_rounds);
    engine::Engine lat_eng(engine::EngineOptions{});

    // spmm_csr + spmm_hyb share the power-law graph and B; spmm_bsr
    // gets a blocked version of it. One cold prime each, then warm
    // rounds — the engine's own per-op histograms record the warm
    // latencies (the cold dispatch lands in the cold histogram).
    NDArray lat_csr_c({g.rows * feat}, ir::DataType::float32());
    lat_eng.spmmCsr(g, feat, &b, &lat_csr_c);
    for (int round = 0; round < lat_rounds; ++round) {
        lat_eng.spmmCsr(g, feat, &b, &lat_csr_c);
    }

    NDArray lat_hyb_c({g.rows * feat}, ir::DataType::float32());
    lat_eng.spmmHyb(g, feat, &b, &lat_hyb_c, config);
    for (int round = 0; round < lat_rounds; ++round) {
        lat_eng.spmmHyb(g, feat, &b, &lat_hyb_c, config);
    }

    // Dedicated smaller graph for BSR: blocking the full power-law
    // graph pads far too many dense blocks for a latency sweep.
    format::Csr lat_bsr_src = graph::powerLawGraph(
        benchutil::fastMode() ? 500 : 1000,
        benchutil::fastMode() ? 3000 : 8000, 1.8, 23);
    format::Bsr lat_bsr = format::bsrFromCsr(lat_bsr_src, 8);
    NDArray lat_bsr_b = NDArray::fromFloat(randomVector(
        lat_bsr.blockCols * lat_bsr.blockSize * feat, 42));
    NDArray lat_bsr_c(
        {lat_bsr.blockRows * lat_bsr.blockSize * feat},
        ir::DataType::float32());
    lat_eng.spmmBsr(lat_bsr, feat, &lat_bsr_b, &lat_bsr_c);
    for (int round = 0; round < lat_rounds; ++round) {
        lat_eng.spmmBsr(lat_bsr, feat, &lat_bsr_b, &lat_bsr_c);
    }

    struct WarmLatency
    {
        const char *op;
        observe::HistogramSnapshot hist;
    };
    std::vector<WarmLatency> warm_latency;
    observe::MetricsSnapshot lat_snap = lat_eng.metricsSnapshot();
    for (const char *op : {"spmm_csr", "spmm_hyb", "spmm_bsr"}) {
        auto it = lat_snap.histograms.find(
            std::string("engine.warm_dispatch_ms.") + op);
        if (it == lat_snap.histograms.end() ||
            it->second.count == 0) {
            continue;
        }
        warm_latency.push_back(WarmLatency{op, it->second});
        std::printf("  %-10s %4llu samples  p50 %8.3f ms  p95 %8.3f "
                    "ms  p99 %8.3f ms\n",
                    op,
                    static_cast<unsigned long long>(it->second.count),
                    it->second.p50Ms, it->second.p95Ms,
                    it->second.p99Ms);
    }

    // ------------------------------------------------------------------
    // 10. Graph compilation: fused whole-model pipelines vs chains
    // ------------------------------------------------------------------
    int64_t dfg_nodes = benchutil::fastMode() ? 500 : 2000;
    int dfg_rounds = benchutil::fastMode() ? 5 : 20;
    std::printf("\n[10] graph compilation: fused pipeline vs per-node "
                "chain (%lld-row mask, %d warm rounds each way)\n",
                static_cast<long long>(dfg_nodes), dfg_rounds);
    format::Csr mask =
        graph::powerLawGraph(dfg_nodes, dfg_nodes * 8, 1.8, 300);
    mask.cols = dfg_nodes;
    dfg::PatternRef dfg_pattern = dfg::SparsityPattern::fromCsr(mask);
    engine::Engine dfg_eng(engine::EngineOptions{});

    // Sparse attention: SDDMM -> scale -> masked-softmax -> SpMM.
    NDArray att_q =
        NDArray::fromFloat(randomVector(mask.rows * feat, 310));
    NDArray att_kt =
        NDArray::fromFloat(randomVector(feat * mask.cols, 311));
    NDArray att_v =
        NDArray::fromFloat(randomVector(mask.cols * feat, 312));
    NDArray att_fused({mask.rows * feat}, ir::DataType::float32());
    NDArray att_chain({mask.rows * feat}, ir::DataType::float32());
    double att_ms[2] = {0.0, 0.0};  // [0]=chain, [1]=fused
    long long att_scratch[2] = {0, 0};
    for (int which = 0; which < 2; ++which) {
        bool fuse = which == 1;
        NDArray *out = fuse ? &att_fused : &att_chain;
        model::attentionPipeline(dfg_eng, dfg_pattern, feat, &att_q,
                                 &att_kt, &att_v, out, fuse);  // warm
        dfg_eng.resetScratchPeak();
        att_ms[which] = benchutil::timedRoundsMs(dfg_rounds, [&] {
            model::attentionPipeline(dfg_eng, dfg_pattern, feat,
                                     &att_q, &att_kt, &att_v, out,
                                     fuse);
        });
        att_scratch[which] = static_cast<long long>(
            dfg_eng.scratchStats().peakLeasedBytes);
        std::printf("  attention %-6s %8.2f ms/request  (%.1f req/s, "
                    "scratch peak %.2f MB)\n",
                    fuse ? "fused:" : "chain:", att_ms[which],
                    att_ms[which] > 0.0 ? 1000.0 / att_ms[which] : 0.0,
                    att_scratch[which] / 1e6);
    }
    bool att_equal = bitwiseEqual(att_chain, att_fused);
    double att_chain_rps =
        att_ms[0] > 0.0 ? 1000.0 / att_ms[0] : 0.0;
    double att_fused_rps =
        att_ms[1] > 0.0 ? 1000.0 / att_ms[1] : 0.0;
    double att_speedup = att_ms[1] > 0.0 ? att_ms[0] / att_ms[1] : 0.0;
    std::printf("  attention fused vs chain: %.2fx, bitwise identical:"
                " %s (chain materialized %.2f MB of intermediates, "
                "fused %.2f MB)\n",
                att_speedup, att_equal ? "yes" : "NO",
                att_scratch[0] / 1e6, att_scratch[1] / 1e6);

    // GraphSAGE layer: mean-aggregate -> dense update.
    NDArray sage_x =
        NDArray::fromFloat(randomVector(mask.cols * feat, 320));
    NDArray sage_w =
        NDArray::fromFloat(randomVector(feat * feat, 321));
    NDArray sage_fused({mask.rows * feat}, ir::DataType::float32());
    NDArray sage_chain({mask.rows * feat}, ir::DataType::float32());
    double sage_ms[2] = {0.0, 0.0};
    for (int which = 0; which < 2; ++which) {
        bool fuse = which == 1;
        NDArray *out = fuse ? &sage_fused : &sage_chain;
        model::graphSageLayer(dfg_eng, dfg_pattern, feat, feat,
                              &sage_x, &sage_w, out, fuse);  // warm
        sage_ms[which] = benchutil::timedRoundsMs(dfg_rounds, [&] {
            model::graphSageLayer(dfg_eng, dfg_pattern, feat, feat,
                                  &sage_x, &sage_w, out, fuse);
        });
        std::printf("  graphsage %-6s %8.2f ms/request  (%.1f "
                    "req/s)\n",
                    fuse ? "fused:" : "chain:", sage_ms[which],
                    sage_ms[which] > 0.0 ? 1000.0 / sage_ms[which]
                                         : 0.0);
    }
    bool sage_equal = bitwiseEqual(sage_chain, sage_fused);
    double sage_chain_rps =
        sage_ms[0] > 0.0 ? 1000.0 / sage_ms[0] : 0.0;
    double sage_fused_rps =
        sage_ms[1] > 0.0 ? 1000.0 / sage_ms[1] : 0.0;
    double sage_speedup =
        sage_ms[1] > 0.0 ? sage_ms[0] / sage_ms[1] : 0.0;
    std::printf("  graphsage fused vs chain: %.2fx, bitwise identical:"
                " %s\n",
                sage_speedup, sage_equal ? "yes" : "NO");

    // ------------------------------------------------------------------
    // 11. Tiered execution: interpreter vs bytecode vs native, warm
    // ------------------------------------------------------------------
    int tier_rounds = benchutil::fastMode() ? 3 : 5;
    std::printf("\n[11] warm dispatch by execution tier (%d rounds "
                "per op family; native promotes synchronously)\n",
                tier_rounds);
    struct TierFamily
    {
        const char *op;
        int64_t outNumel;
        std::function<void(engine::Engine &, NDArray *)> dispatch;
    };
    const TierFamily tier_families[3] = {
        {"spmm_csr", g.rows * feat,
         [&](engine::Engine &e, NDArray *out) {
             e.spmmCsr(g, feat, &b, out);
         }},
        {"spmm_hyb", g.rows * feat,
         [&](engine::Engine &e, NDArray *out) {
             e.spmmHyb(g, feat, &b, out, config);
         }},
        {"spmm_bsr", lat_bsr.blockRows * lat_bsr.blockSize * feat,
         [&](engine::Engine &e, NDArray *out) {
             e.spmmBsr(lat_bsr, feat, &lat_bsr_b, out);
         }}};
    const char *tier_names[3] = {"interpreter", "bytecode", "native"};
    const runtime::Backend tier_backends[3] = {
        runtime::Backend::kInterpreter, runtime::Backend::kBytecode,
        runtime::Backend::kNative};
    double tier_rps[3][3] = {};
    std::vector<NDArray> tier_out[3];
    uint64_t native_compiles = 0;
    uint64_t native_disk_hits = 0;
    uint64_t native_fallbacks = 0;
    double native_compile_ms = 0.0;
    for (int t = 0; t < 3; ++t) {
        engine::EngineOptions options;
        options.backend = tier_backends[t];
        // Promote inside the priming dispatch, so the measured warm
        // rounds run the dlopen'd kernels from round one.
        options.nativePromoteAfter = 0;
        engine::Engine tier_eng(options);
        tier_out[t].reserve(3);
        for (int f = 0; f < 3; ++f) {
            tier_out[t].emplace_back(
                std::vector<int64_t>{tier_families[f].outNumel},
                ir::DataType::float32());
            NDArray *out = &tier_out[t].back();
            tier_families[f].dispatch(tier_eng, out);  // prime
            double ms = benchutil::timedRoundsMs(
                tier_rounds,
                [&] { tier_families[f].dispatch(tier_eng, out); });
            tier_rps[t][f] = ms > 0.0 ? 1000.0 / ms : 0.0;
        }
        if (tier_backends[t] == runtime::Backend::kNative) {
            engine::NativeStats nstats = tier_eng.nativeStats();
            native_compiles = nstats.compiles;
            native_disk_hits = nstats.diskHits;
            native_fallbacks = nstats.fallbacks;
            observe::MetricsSnapshot nsnap =
                tier_eng.metricsSnapshot();
            auto hist = nsnap.histograms.find("native.compile_ms");
            if (hist != nsnap.histograms.end()) {
                native_compile_ms = hist->second.sumMs;
            }
        }
    }
    bool tier_equal = true;
    for (int f = 0; f < 3; ++f) {
        bool equal = bitwiseEqual(tier_out[0][f], tier_out[1][f]) &&
                     bitwiseEqual(tier_out[0][f], tier_out[2][f]);
        tier_equal = tier_equal && equal;
        std::printf("  %-10s %8.1f req/s interpreter  %8.1f req/s "
                    "bytecode  %8.1f req/s native  (native vs "
                    "interpreter %.2fx), 3-tier bitwise identical: "
                    "%s\n",
                    tier_families[f].op, tier_rps[0][f],
                    tier_rps[1][f], tier_rps[2][f],
                    tier_rps[0][f] > 0.0
                        ? tier_rps[2][f] / tier_rps[0][f]
                        : 0.0,
                    equal ? "yes" : "NO");
    }
    std::printf("  native tier: %llu kernel compile(s) in %.1f ms, "
                "%llu disk hit(s), %llu fallback(s)\n",
                static_cast<unsigned long long>(native_compiles),
                native_compile_ms,
                static_cast<unsigned long long>(native_disk_hits),
                static_cast<unsigned long long>(native_fallbacks));

    if (const char *json_path = std::getenv("BENCH_JSON")) {
        std::FILE *json = std::fopen(json_path, "w");
        if (json == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_JSON=%s\n",
                         json_path);
            return 1;
        }
        std::fprintf(
            json,
            "{\n"
            "  \"benchmark\": \"bench_engine_throughput\",\n"
            "  \"fast_mode\": %s,\n"
            "  \"graph_rows\": %lld,\n"
            "  \"graph_nnz\": %lld,\n"
            "  \"feat\": %lld,\n"
            "  \"cold_dispatch_ms\": %.4f,\n"
            "  \"warm_dispatch_ms\": %.4f,\n"
            "  \"dispatch_overhead_ratio\": %.4f,\n"
            "  \"interpreter_warm_ms\": %.4f,\n"
            "  \"bytecode_warm_ms\": %.4f,\n"
            "  \"backend_speedup\": %.4f,\n"
            "  \"bitwise_identical\": %s,\n"
            "  \"batch_requests\": %d,\n"
            "  \"sequential_req_per_s\": %.2f,\n"
            "  \"batched_req_per_s\": %.2f,\n"
            "  \"batched_speedup\": %.4f,\n"
            "  \"batch_bitwise_identical\": %s,\n"
            "  \"scratch_peak_bytes\": %lld,\n"
            "  \"scratch_naive_bytes\": %lld,\n"
            "  \"rgcn_scratch_peak_bytes\": %lld,\n"
            "  \"rgcn_scratch_naive_bytes\": %lld,\n"
            "  \"barriered_req_per_s\": %.2f,\n"
            "  \"fused_req_per_s\": %.2f,\n"
            "  \"fused_speedup\": %.4f,\n"
            "  \"fused_bitwise_identical\": %s,\n"
            "  \"fused_scratch_peak_bytes\": %lld,\n"
            "  \"graph_attention_chain_req_per_s\": %.2f,\n"
            "  \"graph_attention_fused_req_per_s\": %.2f,\n"
            "  \"graph_attention_speedup\": %.4f,\n"
            "  \"graph_attention_bitwise_identical\": %s,\n"
            "  \"graph_attention_chain_scratch_bytes\": %lld,\n"
            "  \"graph_attention_fused_scratch_bytes\": %lld,\n"
            "  \"graph_graphsage_chain_req_per_s\": %.2f,\n"
            "  \"graph_graphsage_fused_req_per_s\": %.2f,\n"
            "  \"graph_graphsage_speedup\": %.4f,\n"
            "  \"graph_graphsage_bitwise_identical\": %s,\n",
            benchutil::fastMode() ? "true" : "false",
            static_cast<long long>(g.rows),
            static_cast<long long>(g.nnz()),
            static_cast<long long>(feat), cold_total, warm_total,
            overhead_ratio, backend_ms[0], backend_ms[1],
            backend_speedup, backend_equal ? "true" : "false",
            batch_requests, sequential_rps, batched_rps,
            batch_speedup, batch_equal ? "true" : "false",
            static_cast<long long>(batch_scratch.peakLeasedBytes),
            naive_bytes,
            static_cast<long long>(rg_scratch.peakLeasedBytes),
            rg_naive_bytes, barriered_rps, fused_rps, fused_speedup,
            fused_equal ? "true" : "false", fused_scratch_peak,
            att_chain_rps, att_fused_rps, att_speedup,
            att_equal ? "true" : "false", att_scratch[0],
            att_scratch[1], sage_chain_rps, sage_fused_rps,
            sage_speedup, sage_equal ? "true" : "false");
        // Build-time verify cost of the warm-latency engine's
        // artifacts (csr + hyb buckets + bsr). Zero kernels means
        // verification was off for this build/env; the perf gate
        // prints it informationally either way.
        engine::CacheStats verify_stats = lat_eng.cacheStats();
        std::fprintf(
            json,
            "  \"verify\": {\"verified_kernels\": %llu, "
            "\"verify_failures\": %llu, \"verify_ms\": %.4f},\n",
            static_cast<unsigned long long>(
                verify_stats.verifiedKernels),
            static_cast<unsigned long long>(
                verify_stats.verifyFailures),
            verify_stats.verifyMs);
        // Tiered-execution trajectory: warm req/s per op family for
        // each execution tier, plus the native tier's compile cost.
        std::fprintf(
            json,
            "  \"native_compiles\": %llu,\n"
            "  \"native_disk_hits\": %llu,\n"
            "  \"native_compile_ms\": %.4f,\n"
            "  \"tiers\": {\n",
            static_cast<unsigned long long>(native_compiles),
            static_cast<unsigned long long>(native_disk_hits),
            native_compile_ms);
        for (int f = 0; f < 3; ++f) {
            bool equal =
                bitwiseEqual(tier_out[0][f], tier_out[1][f]) &&
                bitwiseEqual(tier_out[0][f], tier_out[2][f]);
            std::fprintf(
                json,
                "    \"%s\": {\"interpreter_req_per_s\": %.2f, "
                "\"bytecode_req_per_s\": %.2f, "
                "\"native_req_per_s\": %.2f, "
                "\"bitwise_identical\": %s}%s\n",
                tier_families[f].op, tier_rps[0][f], tier_rps[1][f],
                tier_rps[2][f], equal ? "true" : "false",
                f + 1 < 3 ? "," : "");
        }
        std::fprintf(json, "  },\n");
        std::fprintf(json, "  \"warm_latency\": {\n");
        for (size_t i = 0; i < warm_latency.size(); ++i) {
            const WarmLatency &w = warm_latency[i];
            std::fprintf(
                json,
                "    \"%s\": {\"count\": %llu, \"p50_ms\": %.4f, "
                "\"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                w.op,
                static_cast<unsigned long long>(w.hist.count),
                w.hist.p50Ms, w.hist.p95Ms, w.hist.p99Ms,
                i + 1 < warm_latency.size() ? "," : "");
        }
        std::fprintf(json, "  }\n}\n");
        std::fclose(json);
        std::printf("  wrote %s\n", json_path);
    }

    // Trace export: everything above ran inside the recorder when
    // tracing was requested; dump the timeline and a self-time
    // summary.
    observe::TraceRecorder &recorder = observe::TraceRecorder::global();
    if (recorder.enabled()) {
        std::string trace_path = trace_path_env != nullptr
                                     ? trace_path_env
                                     : "bench_trace.json";
        if (recorder.writeChromeTrace(trace_path)) {
            std::printf(
                "\ntrace: %llu spans on %zu threads -> %s (load in "
                "Perfetto / chrome://tracing)\n",
                static_cast<unsigned long long>(
                    recorder.eventCount()),
                recorder.threadCount(), trace_path.c_str());
        } else {
            std::fprintf(stderr, "cannot write trace %s\n",
                         trace_path.c_str());
        }
        std::printf("%s", recorder.textSummary().c_str());
    }
    return backend_equal && batch_equal && fused_equal && att_equal &&
                   sage_equal && tier_equal
               ? 0
               : 1;
}
