/**
 * @file
 * Schedule primitive tests: every transformation must be
 * semantics-preserving (interpret before/after and compare) and must
 * enforce its preconditions.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/ops.h"
#include "core/pipeline.h"
#include "ir/printer.h"
#include "schedule/schedule.h"
#include "support/rng.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"

namespace sparsetir {
namespace {

using runtime::Bindings;
using runtime::NDArray;

struct SpmmFixture
{
    format::Csr a;
    int64_t feat = 8;
    std::vector<float> bHost;

    SpmmFixture()
    {
        Rng rng(21);
        std::vector<float> dense(23 * 17, 0.0f);
        for (auto &v : dense) {
            if (rng.uniformReal() < 0.2) {
                v = static_cast<float>(rng.uniformReal() + 0.1);
            }
        }
        a = format::csrFromDense(23, 17, dense);
        bHost.resize(a.cols * feat);
        for (auto &v : bHost) {
            v = static_cast<float>(rng.uniformReal() - 0.5);
        }
    }

    /** Execute a scheduled stage II function and return C. */
    std::vector<float>
    run(const ir::PrimFunc &stage2)
    {
        ir::PrimFunc stage3 = transform::lowerSparseBuffers(stage2);
        NDArray indptr = NDArray::fromInt32(a.indptr);
        NDArray indices = NDArray::fromInt32(a.indices);
        NDArray values = NDArray::fromFloat(a.values);
        NDArray b = NDArray::fromFloat(bHost);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        Bindings bindings;
        bindings.scalars = {{"m", a.rows},
                            {"n", a.cols},
                            {"nnz", a.nnz()},
                            {"feat_size", feat}};
        bindings.arrays = {{"J_indptr", &indptr},
                           {"J_indices", &indices},
                           {"A_data", &values},
                           {"B_data", &b},
                           {"C_data", &c}};
        runtime::run(stage3, bindings);
        std::vector<float> out;
        for (int64_t i = 0; i < c.numel(); ++i) {
            out.push_back(static_cast<float>(c.floatAt(i)));
        }
        return out;
    }
};

ir::PrimFunc
loweredSpmm()
{
    return transform::lowerSparseIterations(core::buildSpmm());
}

TEST(Schedule, SplitDivisibleAndTail)
{
    SpmmFixture fx;
    auto expected = fx.run(loweredSpmm());

    for (int64_t factor : {2, 3, 8}) {
        schedule::Schedule sch(loweredSpmm());
        auto loops = sch.getLoops("spmm");
        sch.split(loops[2], factor);  // feat = 8: tests tail + exact
        auto actual = fx.run(sch.func());
        ASSERT_EQ(expected.size(), actual.size());
        for (size_t i = 0; i < expected.size(); ++i) {
            ASSERT_NEAR(expected[i], actual[i], 1e-4)
                << "factor " << factor << " at " << i;
        }
    }
}

TEST(Schedule, SplitUpdatesReduceVars)
{
    SpmmFixture fx;
    auto expected = fx.run(loweredSpmm());
    schedule::Schedule sch(loweredSpmm());
    auto loops = sch.getLoops("spmm");
    // Splitting the reduction loop must keep init gating correct.
    sch.split(loops[1], 4);
    auto actual = fx.run(sch.func());
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(expected[i], actual[i], 1e-4) << "at " << i;
    }
}

TEST(Schedule, ReorderPreservesSemantics)
{
    SpmmFixture fx;
    auto expected = fx.run(loweredSpmm());
    schedule::Schedule sch(loweredSpmm());
    auto loops = sch.getLoops("spmm");
    sch.reorder({loops[2], loops[1]});
    auto actual = fx.run(sch.func());
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(expected[i], actual[i], 1e-4) << "at " << i;
    }
}

TEST(Schedule, FuseSpatialLoops)
{
    SpmmFixture fx;
    auto expected = fx.run(loweredSpmm());
    schedule::Schedule sch(loweredSpmm());
    auto loops = sch.getLoops("spmm");
    // i and the j-block cannot fuse (block boundary); fuse k after
    // splitting it instead.
    auto [k_o, k_i] = sch.split(loops[2], 4);
    std::string fused = sch.fuse(k_o, k_i);
    EXPECT_FALSE(fused.empty());
    auto actual = fx.run(sch.func());
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(expected[i], actual[i], 1e-4) << "at " << i;
    }
}

TEST(Schedule, BindRejectsReductionLoop)
{
    schedule::Schedule sch(loweredSpmm());
    auto loops = sch.getLoops("spmm");
    EXPECT_THROW(sch.bind(loops[1], "threadIdx.x"), UserError);
}

TEST(Schedule, ReorderRejectsCrossBlock)
{
    schedule::Schedule sch(loweredSpmm());
    auto loops = sch.getLoops("spmm");
    // i is separated from j by the spmm_0 isolation block.
    EXPECT_THROW(sch.reorder({loops[1], loops[0]}), UserError);
}

TEST(Schedule, CacheWritePreservesSemantics)
{
    SpmmFixture fx;
    auto expected = fx.run(loweredSpmm());
    schedule::Schedule sch(loweredSpmm());
    auto loops = sch.getLoops("spmm");
    sch.reorder({loops[2], loops[1]});  // reduction innermost
    sch.cacheWrite("spmm", "C");
    auto actual = fx.run(sch.func());
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(expected[i], actual[i], 1e-4) << "at " << i;
    }
}

TEST(Schedule, CacheWriteRequiresReductionInnermost)
{
    schedule::Schedule sch(loweredSpmm());
    // k (spatial) is inside j (reduction): must be rejected.
    EXPECT_THROW(sch.cacheWrite("spmm", "C"), UserError);
}

TEST(Schedule, RfactorPreservesSemantics)
{
    // SDDMM with fused ij: rfactor the lane dimension of the
    // reduction (the PRedS two-stage pattern).
    format::Csr a;
    {
        Rng rng(31);
        std::vector<float> dense(19 * 21, 0.0f);
        for (auto &v : dense) {
            if (rng.uniformReal() < 0.25) {
                v = static_cast<float>(rng.uniformReal() + 0.1);
            }
        }
        a = format::csrFromDense(19, 21, dense);
    }
    int64_t feat = 16;
    Rng rng(32);
    std::vector<float> x_host(a.rows * feat);
    std::vector<float> y_host(feat * a.cols);
    for (auto &v : x_host) {
        v = static_cast<float>(rng.uniformReal() - 0.5);
    }
    for (auto &v : y_host) {
        v = static_cast<float>(rng.uniformReal() - 0.5);
    }

    auto run_schedule = [&](bool use_rfactor) {
        ir::PrimFunc stage2 = transform::lowerSparseIterations(
            core::buildSddmm(true));
        schedule::Schedule sch(stage2);
        auto loops = sch.getLoops("sddmm");  // ij, k
        if (use_rfactor) {
            auto [k_o, k_i] = sch.split(loops[1], 4);
            sch.reorder({k_i, k_o});
            sch.rfactor("sddmm", k_i);
            sch.bind(k_i, "threadIdx.x");
        }
        ir::PrimFunc stage3 =
            transform::lowerSparseBuffers(sch.func());
        NDArray indptr = NDArray::fromInt32(a.indptr);
        NDArray indices = NDArray::fromInt32(a.indices);
        NDArray values = NDArray::fromFloat(a.values);
        NDArray x = NDArray::fromFloat(x_host);
        NDArray y = NDArray::fromFloat(y_host);
        NDArray out({a.nnz()}, ir::DataType::float32());
        Bindings bindings;
        bindings.scalars = {{"m", a.rows},
                            {"n", a.cols},
                            {"nnz", a.nnz()},
                            {"feat_size", feat}};
        bindings.arrays = {{"J_indptr", &indptr},
                           {"J_indices", &indices},
                           {"A_data", &values},
                           {"X_data", &x},
                           {"Y_data", &y},
                           {"B_data", &out}};
        runtime::run(stage3, bindings);
        std::vector<float> result;
        for (int64_t i = 0; i < out.numel(); ++i) {
            result.push_back(static_cast<float>(out.floatAt(i)));
        }
        return result;
    };

    auto plain = run_schedule(false);
    auto factored = run_schedule(true);
    ASSERT_EQ(plain.size(), factored.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        // rfactor changes reduction order: tolerate FP reassociation.
        ASSERT_NEAR(plain[i], factored[i], 1e-3) << "at " << i;
    }
}

TEST(Schedule, TensorizeIsFunctionalNoop)
{
    SpmmFixture fx;
    auto expected = fx.run(loweredSpmm());
    schedule::Schedule sch(loweredSpmm());
    sch.tensorize("spmm", "m16n16k16");
    auto actual = fx.run(sch.func());
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(expected[i], actual[i], 1e-4) << "at " << i;
    }
}

TEST(Schedule, VectorizeUnrollPreserveSemantics)
{
    SpmmFixture fx;
    auto expected = fx.run(loweredSpmm());
    schedule::Schedule sch(loweredSpmm());
    auto loops = sch.getLoops("spmm");
    auto [k_o, k_i] = sch.split(loops[2], 4);
    sch.vectorize(k_i);
    sch.unroll(k_o);
    auto actual = fx.run(sch.func());
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(expected[i], actual[i], 1e-4) << "at " << i;
    }
}

} // namespace
} // namespace sparsetir
