/**
 * @file
 * Dataflow-graph layer: differential correctness and serving-path
 * properties of engine::Engine::dispatchGraph.
 *
 * The load-bearing contract: a fused graph program is BITWISE
 * identical to dispatching the per-node chain (fusion rewrites
 * addressing, never per-row arithmetic), the chain itself matches a
 * dense reference, a graph resolves ONE cached artifact whose warm
 * dispatches never probe the launch grid, the fused path's peak
 * scratch is strictly below the chain's materialized intermediates,
 * and every lowered program — fused or chain — passes the static
 * verifier against the graph's concrete structure arrays.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "dfg/lower.h"
#include "dfg/op_graph.h"
#include "engine/engine.h"
#include "model/attention.h"
#include "model/graphsage.h"
#include "model/rgcn.h"
#include "runtime/interpreter.h"
#include "support/rng.h"
#include "test_util.h"

namespace sparsetir {
namespace {

using dfg::OpGraph;
using dfg::PatternRef;
using dfg::SparsityPattern;
using engine::Engine;
using engine::EngineOptions;
using engine::GraphDispatchOptions;
using format::Csr;
using runtime::NDArray;
using testutil::bitwiseEqual;
using testutil::randomVector;

Csr
randomCsr(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> dense(rows * cols, 0.0f);
    for (auto &v : dense) {
        if (rng.uniformReal() < density) {
            v = static_cast<float>(rng.uniformReal() * 2.0 - 1.0);
            if (v == 0.0f) {
                v = 0.5f;
            }
        }
    }
    return format::csrFromDense(rows, cols, dense);
}

EngineOptions
verifyingOptions()
{
    EngineOptions options;
    options.verifyArtifacts = true;
    return options;
}

/** Attention pipeline reference in plain float arithmetic. */
std::vector<float>
denseAttentionReference(const Csr &mask, int64_t d,
                        const std::vector<float> &q,
                        const std::vector<float> &kt,
                        const std::vector<float> &v)
{
    float scale =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(d)));
    std::vector<float> out(mask.rows * d, 0.0f);
    for (int64_t i = 0; i < mask.rows; ++i) {
        int32_t lo = mask.indptr[i];
        int32_t hi = mask.indptr[i + 1];
        if (lo == hi) {
            continue;
        }
        std::vector<float> scores(hi - lo);
        float mx = -std::numeric_limits<float>::max();
        for (int32_t p = lo; p < hi; ++p) {
            float acc = 0.0f;
            for (int64_t k = 0; k < d; ++k) {
                acc += q[i * d + k] *
                       kt[k * mask.cols + mask.indices[p]];
            }
            scores[p - lo] = acc * scale;
            mx = std::max(mx, scores[p - lo]);
        }
        float sum = 0.0f;
        for (float s : scores) {
            sum += std::exp(s - mx);
        }
        for (int64_t k = 0; k < d; ++k) {
            float acc = 0.0f;
            for (int32_t p = lo; p < hi; ++p) {
                acc += std::exp(scores[p - lo] - mx) / sum *
                       v[mask.indices[p] * d + k];
            }
            out[i * d + k] = acc;
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Fused vs chain vs reference
// ---------------------------------------------------------------------

TEST(DfgAttention, FusedMatchesChainBitwiseAndReference)
{
    Csr mask = randomCsr(48, 48, 0.15, 101);
    PatternRef pattern = SparsityPattern::fromCsr(mask);
    int64_t d = 16;
    NDArray q = NDArray::fromFloat(randomVector(mask.rows * d, 1));
    NDArray kt = NDArray::fromFloat(randomVector(d * mask.cols, 2));
    NDArray v = NDArray::fromFloat(randomVector(mask.cols * d, 3));
    NDArray fused({mask.rows * d}, ir::DataType::float32());
    NDArray chain({mask.rows * d}, ir::DataType::float32());

    Engine engine(verifyingOptions());
    auto fused_info = model::attentionPipeline(
        engine, pattern, d, &q, &kt, &v, &fused, /*fuse=*/true);
    auto chain_info = model::attentionPipeline(
        engine, pattern, d, &q, &kt, &v, &chain, /*fuse=*/false);

    EXPECT_EQ(fused_info.numKernels, 1);
    EXPECT_GT(chain_info.numKernels, 1);
    EXPECT_TRUE(bitwiseEqual(fused, chain));

    std::vector<float> reference = denseAttentionReference(
        mask, d, randomVector(mask.rows * d, 1),
        randomVector(d * mask.cols, 2), randomVector(mask.cols * d, 3));
    NDArray ref = NDArray::fromFloat(reference);
    EXPECT_LT(runtime::maxAbsDiff(fused, ref), 1e-4);
}

TEST(DfgGraphSage, FusedMatchesChainBitwiseAndReference)
{
    Csr adj = randomCsr(40, 32, 0.2, 7);
    PatternRef pattern = SparsityPattern::fromCsr(adj);
    int64_t fin = 12, fout = 8;
    NDArray x = NDArray::fromFloat(randomVector(adj.cols * fin, 11));
    NDArray w = NDArray::fromFloat(randomVector(fin * fout, 12));
    NDArray fused({adj.rows * fout}, ir::DataType::float32());
    NDArray chain({adj.rows * fout}, ir::DataType::float32());

    Engine engine(verifyingOptions());
    auto fused_info = model::graphSageLayer(
        engine, pattern, fin, fout, &x, &w, &fused, /*fuse=*/true);
    auto chain_info = model::graphSageLayer(
        engine, pattern, fin, fout, &x, &w, &chain, /*fuse=*/false);

    EXPECT_EQ(fused_info.numKernels, 1);
    EXPECT_EQ(chain_info.numKernels, 2);
    EXPECT_TRUE(bitwiseEqual(fused, chain));

    // Mean-aggregate + update reference (empty rows contribute 0).
    std::vector<float> xs = randomVector(adj.cols * fin, 11);
    std::vector<float> ws = randomVector(fin * fout, 12);
    std::vector<float> h(adj.rows * fin, 0.0f);
    for (int64_t i = 0; i < adj.rows; ++i) {
        int32_t lo = adj.indptr[i], hi = adj.indptr[i + 1];
        for (int64_t k = 0; k < fin; ++k) {
            float acc = 0.0f;
            for (int32_t p = lo; p < hi; ++p) {
                acc += xs[adj.indices[p] * fin + k];
            }
            h[i * fin + k] =
                acc / static_cast<float>(std::max(hi - lo, 1));
        }
    }
    std::vector<float> expected(adj.rows * fout, 0.0f);
    for (int64_t i = 0; i < adj.rows; ++i) {
        for (int64_t j = 0; j < fout; ++j) {
            float acc = 0.0f;
            for (int64_t k = 0; k < fin; ++k) {
                acc += h[i * fin + k] * ws[k * fout + j];
            }
            expected[i * fout + j] = acc;
        }
    }
    NDArray ref = NDArray::fromFloat(expected);
    EXPECT_LT(runtime::maxAbsDiff(fused, ref), 1e-4);
}

TEST(DfgBackends, FusedGraphAgreesBitwiseAcrossBackends)
{
    Csr mask = randomCsr(32, 32, 0.2, 21);
    PatternRef pattern = SparsityPattern::fromCsr(mask);
    int64_t d = 8;
    NDArray q = NDArray::fromFloat(randomVector(mask.rows * d, 31));
    NDArray kt = NDArray::fromFloat(randomVector(d * mask.cols, 32));
    NDArray v = NDArray::fromFloat(randomVector(mask.cols * d, 33));
    NDArray vm_out({mask.rows * d}, ir::DataType::float32());
    NDArray interp_out({mask.rows * d}, ir::DataType::float32());

    EngineOptions vm_opts = verifyingOptions();
    Engine vm_engine(vm_opts);
    EngineOptions interp_opts = verifyingOptions();
    interp_opts.backend = runtime::Backend::kInterpreter;
    Engine interp_engine(interp_opts);

    model::attentionPipeline(vm_engine, pattern, d, &q, &kt, &v,
                             &vm_out);
    model::attentionPipeline(interp_engine, pattern, d, &q, &kt, &v,
                             &interp_out);
    EXPECT_TRUE(bitwiseEqual(vm_out, interp_out));
}

// ---------------------------------------------------------------------
// Serving-path properties
// ---------------------------------------------------------------------

TEST(DfgServing, OneCompilePerGraphAndWarmPathNeverProbes)
{
    Csr mask = randomCsr(24, 24, 0.2, 41);
    PatternRef pattern = SparsityPattern::fromCsr(mask);
    int64_t d = 8;
    NDArray q = NDArray::fromFloat(randomVector(mask.rows * d, 51));
    NDArray kt = NDArray::fromFloat(randomVector(d * mask.cols, 52));
    NDArray v = NDArray::fromFloat(randomVector(mask.cols * d, 53));
    NDArray out({mask.rows * d}, ir::DataType::float32());

    Engine engine(verifyingOptions());
    auto cold = model::attentionPipeline(engine, pattern, d, &q, &kt,
                                         &v, &out);
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_EQ(engine.cacheStats().misses, 1u);

    uint64_t probes_before = runtime::launchProbeCount();
    for (int i = 0; i < 3; ++i) {
        auto warm = model::attentionPipeline(engine, pattern, d, &q,
                                             &kt, &v, &out);
        EXPECT_TRUE(warm.cacheHit);
    }
    // Graph kernels bake every extent as a constant; warm dispatch
    // never routes a launch-grid probe through the interpreter.
    EXPECT_EQ(runtime::launchProbeCount(), probes_before);
    EXPECT_EQ(engine.cacheStats().misses, 1u);
    EXPECT_EQ(engine.cacheStats().hits, 3u);
}

TEST(DfgServing, FusedPeakScratchBelowChainIntermediates)
{
    Csr mask = randomCsr(64, 64, 0.2, 61);
    PatternRef pattern = SparsityPattern::fromCsr(mask);
    int64_t d = 16;
    NDArray q = NDArray::fromFloat(randomVector(mask.rows * d, 71));
    NDArray kt = NDArray::fromFloat(randomVector(d * mask.cols, 72));
    NDArray v = NDArray::fromFloat(randomVector(mask.cols * d, 73));
    NDArray out({mask.rows * d}, ir::DataType::float32());

    // The chain materializes three edge intermediates (scores,
    // scaled, weights) in leased scratch.
    int64_t chain_intermediate_bytes =
        3 * mask.nnz() * static_cast<int64_t>(sizeof(float));

    Engine engine(verifyingOptions());
    engine.resetScratchPeak();
    model::attentionPipeline(engine, pattern, d, &q, &kt, &v, &out,
                             /*fuse=*/false);
    EXPECT_GE(engine.scratchStats().peakLeasedBytes,
              chain_intermediate_bytes);

    engine.resetScratchPeak();
    model::attentionPipeline(engine, pattern, d, &q, &kt, &v, &out,
                             /*fuse=*/true);
    // Fused interiors live in per-row locals: nothing is leased, and
    // the fused peak is strictly below the chain's intermediates.
    EXPECT_EQ(engine.scratchStats().peakLeasedBytes, 0);
    EXPECT_LT(engine.scratchStats().peakLeasedBytes,
              chain_intermediate_bytes);
}

TEST(DfgServing, MixedPatternsBailToChain)
{
    PatternRef p1 = SparsityPattern::fromCsr(randomCsr(16, 12, 0.3, 81));
    PatternRef p2 = SparsityPattern::fromCsr(randomCsr(16, 12, 0.3, 82));

    OpGraph graph;
    int x = graph.denseInput("x", 12, 4);
    int w = graph.denseInput("w", 4, 4);
    int h1 = graph.aggregate(p1, x, false);
    int h2 = graph.aggregate(p2, x, false);
    int sum = graph.add(h1, h2);
    int out = graph.update(sum, w);
    graph.markOutput(out, "out");

    std::string reason;
    EXPECT_FALSE(dfg::fusible(graph, &reason));
    EXPECT_FALSE(reason.empty());

    NDArray xs = NDArray::fromFloat(randomVector(12 * 4, 91));
    NDArray ws = NDArray::fromFloat(randomVector(4 * 4, 92));
    NDArray out_arr({16 * 4}, ir::DataType::float32());
    Engine engine(verifyingOptions());
    auto info = engine.dispatchGraph(
        graph, {{"x", &xs}, {"w", &ws}, {"out", &out_arr}});
    EXPECT_EQ(info.numKernels, 4); // chain, despite fuse=true
}

TEST(DfgServing, SharedPatternObjectIsWhatFuses)
{
    // Identical CONTENT but distinct PatternRef objects: fusion is
    // pointer-keyed (identity defines the iteration space).
    Csr mask = randomCsr(16, 16, 0.3, 83);
    PatternRef p1 = SparsityPattern::fromCsr(mask);
    PatternRef p2 = SparsityPattern::fromCsr(mask);

    OpGraph split;
    int q = split.denseInput("q", 16, 4);
    int kt = split.denseInput("kt", 4, 16);
    int e = split.sddmm(p1, q, kt);
    (void)e;
    int x = split.denseInput("x", 16, 4);
    int h = split.aggregate(p2, x, false);
    split.markOutput(split.update(h, split.denseInput("w", 4, 4)),
                     "out");
    std::string reason;
    EXPECT_FALSE(dfg::fusible(split, &reason));
}

TEST(DfgServing, GatheredInteriorValueBailsToChain)
{
    // aggregate's dense output feeds spmm's gathered rhs: spmm reads
    // rows col(p) != i of it, which fusion's per-row locals cannot
    // represent. The graph must bail to the chain — and stay bitwise
    // equal to the explicit chain dispatch and close to dense math.
    Csr adj = randomCsr(24, 24, 0.25, 120);
    PatternRef pattern = SparsityPattern::fromCsr(adj);
    int64_t feat = 6;
    OpGraph graph;
    int e = graph.edgeInput("e", pattern);
    int x = graph.denseInput("x", 24, feat);
    int h = graph.aggregate(pattern, x, false);
    graph.markOutput(graph.spmm(e, h), "out");

    std::string reason;
    EXPECT_FALSE(dfg::fusible(graph, &reason));
    EXPECT_FALSE(reason.empty());
    dfg::GraphLowering lowering = dfg::lowerGraph(graph, true);
    EXPECT_FALSE(lowering.fused);
    EXPECT_EQ(lowering.funcs.size(), 2u);

    std::vector<float> es = randomVector(adj.nnz(), 121);
    std::vector<float> xs = randomVector(24 * feat, 122);
    NDArray ea = NDArray::fromFloat(es);
    NDArray xa = NDArray::fromFloat(xs);
    NDArray fused_out({24 * feat}, ir::DataType::float32());
    NDArray chain_out({24 * feat}, ir::DataType::float32());
    Engine engine(verifyingOptions());
    auto info = engine.dispatchGraph(
        graph, {{"e", &ea}, {"x", &xa}, {"out", &fused_out}});
    EXPECT_EQ(info.numKernels, 2); // chain, despite fuse=true
    GraphDispatchOptions chain_opts;
    chain_opts.fuse = false;
    engine.dispatchGraph(
        graph, {{"e", &ea}, {"x", &xa}, {"out", &chain_out}},
        chain_opts);
    EXPECT_TRUE(bitwiseEqual(fused_out, chain_out));

    std::vector<float> hs(24 * feat, 0.0f);
    for (int64_t i = 0; i < 24; ++i) {
        for (int32_t p = adj.indptr[i]; p < adj.indptr[i + 1]; ++p) {
            for (int64_t k = 0; k < feat; ++k) {
                hs[i * feat + k] += xs[adj.indices[p] * feat + k];
            }
        }
    }
    std::vector<float> expected(24 * feat, 0.0f);
    for (int64_t i = 0; i < 24; ++i) {
        for (int32_t p = adj.indptr[i]; p < adj.indptr[i + 1]; ++p) {
            for (int64_t k = 0; k < feat; ++k) {
                expected[i * feat + k] +=
                    es[p] * hs[adj.indices[p] * feat + k];
            }
        }
    }
    NDArray ref = NDArray::fromFloat(expected);
    EXPECT_LT(runtime::maxAbsDiff(chain_out, ref), 1e-4);
}

TEST(DfgServing, TwoLayerGraphSageGathersInteriorAndBailsToChain)
{
    // The 2-layer GraphSAGE stack shares one pattern and exposes no
    // interior output, but layer 2's aggregate gathers layer 1's
    // result across rows — exactly the shape that must not fuse.
    Csr adj = randomCsr(20, 20, 0.3, 123);
    PatternRef pattern = SparsityPattern::fromCsr(adj);
    OpGraph graph;
    int x = graph.denseInput("x", 20, 4);
    int w1 = graph.denseInput("w1", 4, 4);
    int w2 = graph.denseInput("w2", 4, 4);
    int y1 = graph.update(graph.aggregate(pattern, x, true), w1);
    int y2 = graph.update(graph.aggregate(pattern, y1, true), w2);
    graph.markOutput(y2, "out");

    std::string reason;
    EXPECT_FALSE(dfg::fusible(graph, &reason));
    EXPECT_FALSE(reason.empty());

    NDArray xa = NDArray::fromFloat(randomVector(20 * 4, 124));
    NDArray w1a = NDArray::fromFloat(randomVector(4 * 4, 125));
    NDArray w2a = NDArray::fromFloat(randomVector(4 * 4, 126));
    NDArray fused_out({20 * 4}, ir::DataType::float32());
    NDArray chain_out({20 * 4}, ir::DataType::float32());
    Engine engine(verifyingOptions());
    auto info = engine.dispatchGraph(graph, {{"x", &xa},
                                             {"w1", &w1a},
                                             {"w2", &w2a},
                                             {"out", &fused_out}});
    EXPECT_EQ(info.numKernels, 4); // chain, despite fuse=true
    GraphDispatchOptions chain_opts;
    chain_opts.fuse = false;
    engine.dispatchGraph(graph,
                         {{"x", &xa},
                          {"w1", &w1a},
                          {"w2", &w2a},
                          {"out", &chain_out}},
                         chain_opts);
    EXPECT_TRUE(bitwiseEqual(fused_out, chain_out));
}

TEST(DfgServing, InteriorOutputBailsToChain)
{
    Csr mask = randomCsr(20, 20, 0.25, 84);
    PatternRef pattern = SparsityPattern::fromCsr(mask);
    OpGraph graph;
    int q = graph.denseInput("q", 20, 4);
    int kt = graph.denseInput("kt", 4, 20);
    int v = graph.denseInput("v", 20, 4);
    int e = graph.sddmm(pattern, q, kt);
    int s = graph.maskedSoftmax(e);
    int out = graph.spmm(s, v);
    graph.markOutput(s, "weights"); // exposes the interior tensor
    graph.markOutput(out, "out");

    std::string reason;
    EXPECT_FALSE(dfg::fusible(graph, &reason));

    NDArray qa = NDArray::fromFloat(randomVector(20 * 4, 93));
    NDArray ka = NDArray::fromFloat(randomVector(4 * 20, 94));
    NDArray va = NDArray::fromFloat(randomVector(20 * 4, 95));
    NDArray weights({mask.nnz()}, ir::DataType::float32());
    NDArray out_arr({20 * 4}, ir::DataType::float32());
    Engine engine(verifyingOptions());
    auto info = engine.dispatchGraph(graph, {{"q", &qa},
                                             {"kt", &ka},
                                             {"v", &va},
                                             {"weights", &weights},
                                             {"out", &out_arr}});
    EXPECT_EQ(info.numKernels, 3);
    // The exposed softmax weights sum to 1 over every non-empty row.
    for (int64_t i = 0; i < mask.rows; ++i) {
        int32_t lo = mask.indptr[i], hi = mask.indptr[i + 1];
        if (lo == hi) {
            continue;
        }
        float sum = 0.0f;
        for (int32_t p = lo; p < hi; ++p) {
            sum += static_cast<float>(weights.floatAt(p));
        }
        EXPECT_NEAR(sum, 1.0f, 1e-4f);
    }
}

TEST(DfgServing, IoMapIsValidated)
{
    Csr adj = randomCsr(8, 8, 0.4, 85);
    PatternRef pattern = SparsityPattern::fromCsr(adj);
    OpGraph graph = model::buildGraphSageLayerGraph(pattern, 4, 4);
    NDArray x = NDArray::fromFloat(randomVector(8 * 4, 96));
    NDArray w = NDArray::fromFloat(randomVector(4 * 4, 97));
    NDArray out({8 * 4}, ir::DataType::float32());
    NDArray small({3}, ir::DataType::float32());
    Engine engine;
    EXPECT_THROW(engine.dispatchGraph(graph, {{"x", &x}, {"w", &w}}),
                 UserError);
    EXPECT_THROW(engine.dispatchGraph(
                     graph, {{"x", &x}, {"w", &w}, {"out", &small}}),
                 UserError);
    EXPECT_THROW(engine.dispatchGraph(graph, {{"x", &x},
                                              {"w", &w},
                                              {"out", &out},
                                              {"typo", &out}}),
                 UserError);
}

TEST(DfgRgcn, MultiRelationChainMatchesReference)
{
    std::vector<dfg::PatternRef> relations = {
        SparsityPattern::fromCsr(randomCsr(24, 24, 0.15, 86)),
        SparsityPattern::fromCsr(randomCsr(24, 24, 0.15, 87)),
        SparsityPattern::fromCsr(randomCsr(24, 24, 0.15, 88)),
    };
    int64_t fin = 8, fout = 6;
    std::vector<float> xs = randomVector(24 * fin, 98);
    std::vector<float> ws = randomVector(fin * fout, 99);
    NDArray x = NDArray::fromFloat(xs);
    NDArray w = NDArray::fromFloat(ws);
    NDArray out({24 * fout}, ir::DataType::float32());

    Engine engine(verifyingOptions());
    auto info =
        model::rgcnLayer(engine, relations, fin, fout, &x, &w, &out);
    // Distinct relation structures dispatch as the chain.
    EXPECT_GT(info.numKernels, 1);

    std::vector<float> h(24 * fin, 0.0f);
    for (const auto &rel : relations) {
        for (size_t i = 0; i + 1 < rel->indptr.size(); ++i) {
            for (int32_t p = rel->indptr[i]; p < rel->indptr[i + 1];
                 ++p) {
                for (int64_t k = 0; k < fin; ++k) {
                    h[i * fin + k] += xs[rel->indices[p] * fin + k];
                }
            }
        }
    }
    std::vector<float> expected(24 * fout, 0.0f);
    for (int64_t i = 0; i < 24; ++i) {
        for (int64_t j = 0; j < fout; ++j) {
            float acc = 0.0f;
            for (int64_t k = 0; k < fin; ++k) {
                acc += h[i * fin + k] * ws[k * fout + j];
            }
            expected[i * fout + j] = acc;
        }
    }
    NDArray ref = NDArray::fromFloat(expected);
    EXPECT_LT(runtime::maxAbsDiff(out, ref), 1e-3);
}

// ---------------------------------------------------------------------
// Lowering-level properties
// ---------------------------------------------------------------------

TEST(DfgLowering, FusedProgramHasNoInteriorParams)
{
    Csr mask = randomCsr(16, 16, 0.3, 89);
    PatternRef pattern = SparsityPattern::fromCsr(mask);
    OpGraph graph = model::buildAttentionGraph(pattern, 8);
    dfg::GraphLowering fused = dfg::lowerGraph(graph, true);
    ASSERT_TRUE(fused.fused);
    ASSERT_EQ(fused.funcs.size(), 1u);
    EXPECT_TRUE(fused.temps.empty());
    // The fused signature holds structure arrays + named io only; no
    // "t_*" intermediate ever appears as a parameter.
    for (const auto &param : fused.funcs[0]->params) {
        EXPECT_NE(param->name.rfind("t_", 0), 0u)
            << "interior tensor '" << param->name
            << "' leaked into the fused signature";
    }

    dfg::GraphLowering chain = dfg::lowerGraph(graph, false);
    EXPECT_FALSE(chain.fused);
    EXPECT_EQ(chain.funcs.size(), 4u);
    EXPECT_EQ(chain.temps.size(), 3u);
    for (const auto &temp : chain.temps) {
        EXPECT_EQ(temp.numel, mask.nnz());
    }
}

TEST(DfgGraph, DuplicateValueNamesRejected)
{
    // Lowering keys buffers by binding name; two values sharing one
    // name would silently alias, so the builder must refuse it.
    PatternRef pattern =
        SparsityPattern::fromCsr(randomCsr(8, 8, 0.4, 92));
    OpGraph graph;
    int x = graph.denseInput("x", 8, 4);
    EXPECT_THROW(graph.denseInput("x", 8, 4), UserError);
    EXPECT_THROW(graph.edgeInput("x", pattern), UserError);
    int h = graph.aggregate(pattern, x, false);
    EXPECT_THROW(graph.markOutput(h, "x"), UserError);
    graph.markOutput(h, "out");
    int h2 = graph.aggregate(pattern, x, true);
    EXPECT_THROW(graph.markOutput(h2, "out"), UserError);
}

TEST(DfgGraph, BuildTimeShapeAndNameChecks)
{
    PatternRef pattern =
        SparsityPattern::fromCsr(randomCsr(8, 8, 0.4, 90));
    OpGraph graph;
    EXPECT_THROW(graph.denseInput("J_bad", 4, 4), UserError);
    EXPECT_THROW(graph.denseInput("t_bad", 4, 4), UserError);
    EXPECT_THROW(graph.denseInput("acc_bad", 4, 4), UserError);
    int q = graph.denseInput("q", 8, 4);
    // sddmm rhs must have the pattern's cols.
    int bad = graph.denseInput("bad", 4, 7);
    EXPECT_THROW(graph.sddmm(pattern, q, bad), UserError);
    // Nodes must share one row space.
    PatternRef other =
        SparsityPattern::fromCsr(randomCsr(5, 8, 0.4, 91));
    int x = graph.denseInput("x", 8, 4);
    graph.aggregate(pattern, x, false);
    EXPECT_THROW(graph.aggregate(other, x, false), UserError);
}

} // namespace
} // namespace sparsetir
