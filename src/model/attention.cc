#include "model/attention.h"

#include <cmath>

#include "baselines/triton.h"
#include "baselines/vendor_constants.h"
#include "core/pipeline.h"
#include "format/bsr.h"
#include "observe/trace.h"

namespace sparsetir {
namespace model {

using namespace baselines;

namespace {

gpusim::SimOptions
oursOpts()
{
    gpusim::SimOptions opts;
    opts.efficiency = kSparseTirEfficiency;
    return opts;
}

gpusim::SimOptions
tritonOpts()
{
    gpusim::SimOptions opts;
    opts.efficiency = kTritonEfficiency;
    return opts;
}

} // namespace

AttentionTimes
attentionSpmm(const format::Csr &mask, const AttentionConfig &config,
              gpusim::Device &device)
{
    AttentionTimes times;
    format::Bsr bsr = format::bsrFromCsr(mask, config.blockSize);

    auto triton = tritonBlockSpmm(bsr, config.headDim);
    times.tritonMs =
        device.launch(*triton, tritonOpts()).timeMs * config.heads;

    auto csr_shared = std::make_shared<core::BindingSet>();
    auto csr_kernel = core::compileSpmmCsr(mask, config.headDim,
                                           csr_shared);
    runtime::NDArray b({mask.cols * config.headDim},
                       ir::DataType::float32());
    runtime::NDArray c({mask.rows * config.headDim},
                       ir::DataType::float32());
    csr_shared->external("B_data", &b);
    csr_shared->external("C_data", &c);
    times.sparsetirCsrMs =
        device.launch(csr_kernel->simKernel(), oursOpts()).timeMs *
        config.heads;

    auto bsr_shared = std::make_shared<core::BindingSet>();
    auto bsr_kernel = core::compileBsrSpmm(bsr, config.headDim,
                                           bsr_shared, true);
    runtime::NDArray b2(
        {bsr.blockCols * config.blockSize * config.headDim},
        ir::DataType::float32());
    runtime::NDArray c2(
        {bsr.blockRows * config.blockSize * config.headDim},
        ir::DataType::float32());
    bsr_shared->external("B_data", &b2);
    bsr_shared->external("C_data", &c2);
    times.sparsetirBsrMs =
        device.launch(bsr_kernel->simKernel(), oursOpts()).timeMs *
        config.heads;
    return times;
}

AttentionTimes
attentionSddmm(const format::Csr &mask, const AttentionConfig &config,
               gpusim::Device &device)
{
    AttentionTimes times;
    format::Bsr bsr = format::bsrFromCsr(mask, config.blockSize);

    auto triton = tritonBlockSddmm(bsr, config.headDim);
    times.tritonMs =
        device.launch(*triton, tritonOpts()).timeMs * config.heads;

    auto csr_shared = std::make_shared<core::BindingSet>();
    auto csr_kernel = core::compileSddmm(mask, config.headDim,
                                         csr_shared);
    runtime::NDArray x({mask.rows * config.headDim},
                       ir::DataType::float32());
    runtime::NDArray y({config.headDim * mask.cols},
                       ir::DataType::float32());
    runtime::NDArray out({mask.nnz()}, ir::DataType::float32());
    csr_shared->external("X_data", &x);
    csr_shared->external("Y_data", &y);
    csr_shared->external("B_data", &out);
    times.sparsetirCsrMs =
        device.launch(csr_kernel->simKernel(), oursOpts()).timeMs *
        config.heads;

    // SparseTIR BSR SDDMM: one thread block per block row, the X
    // panel reused across the row's non-zero blocks — a compiled IR
    // kernel like every other entry, not a hand-rolled sim model.
    auto bsr_shared = std::make_shared<core::BindingSet>();
    auto bsr_kernel = core::compileBsrSddmm(bsr, config.headDim,
                                            bsr_shared, true);
    runtime::NDArray x2(
        {bsr.blockRows * config.blockSize * config.headDim},
        ir::DataType::float32());
    runtime::NDArray y2(
        {config.headDim * bsr.blockCols * config.blockSize},
        ir::DataType::float32());
    runtime::NDArray out2(
        {static_cast<int64_t>(bsr.values.size())},
        ir::DataType::float32());
    bsr_shared->external("X_data", &x2);
    bsr_shared->external("Y_data", &y2);
    bsr_shared->external("B_data", &out2);
    times.sparsetirBsrMs =
        device.launch(bsr_kernel->simKernel(), oursOpts()).timeMs *
        config.heads;
    return times;
}

dfg::OpGraph
buildAttentionGraph(const dfg::PatternRef &mask, int64_t head_dim)
{
    SPARSETIR_TRACE_SCOPE("dfg", "dfg.graph_build");
    dfg::OpGraph graph;
    int q = graph.denseInput("q", mask->rows, head_dim);
    int kt = graph.denseInput("kt", head_dim, mask->cols);
    int v = graph.denseInput("v", mask->cols, head_dim);
    int scores = graph.sddmm(mask, q, kt);
    int scaled = graph.elementwise(
        scores, dfg::EwiseFn::kScale,
        1.0 / std::sqrt(static_cast<double>(head_dim)));
    int weights = graph.maskedSoftmax(scaled);
    int out = graph.spmm(weights, v);
    graph.markOutput(out, "out");
    return graph;
}

engine::DispatchInfo
attentionPipeline(engine::Engine &engine, const dfg::PatternRef &mask,
                  int64_t head_dim, runtime::NDArray *q,
                  runtime::NDArray *kt, runtime::NDArray *v,
                  runtime::NDArray *out, bool fuse)
{
    dfg::OpGraph graph = buildAttentionGraph(mask, head_dim);
    engine::GraphDispatchOptions options;
    options.fuse = fuse;
    return engine.dispatchGraph(
        graph, {{"q", q}, {"kt", kt}, {"v", v}, {"out", out}},
        options);
}

} // namespace model
} // namespace sparsetir
