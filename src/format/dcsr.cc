#include "format/dcsr.h"

#include "support/logging.h"

namespace sparsetir {
namespace format {

Dcsr
dcsrFromCsr(const Csr &m)
{
    Dcsr out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.indptr.push_back(0);
    for (int64_t r = 0; r < m.rows; ++r) {
        if (m.rowLength(r) == 0) {
            continue;
        }
        out.rowIndices.push_back(static_cast<int32_t>(r));
        for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
            out.indices.push_back(m.indices[p]);
            out.values.push_back(m.values[p]);
        }
        out.indptr.push_back(static_cast<int32_t>(out.indices.size()));
    }
    return out;
}

Csr
csrFromDcsr(const Dcsr &m)
{
    Csr out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.indptr.assign(m.rows + 1, 0);
    for (int64_t sr = 0; sr < m.numStoredRows(); ++sr) {
        out.indptr[m.rowIndices[sr] + 1] =
            m.indptr[sr + 1] - m.indptr[sr];
    }
    for (int64_t r = 0; r < m.rows; ++r) {
        out.indptr[r + 1] += out.indptr[r];
    }
    out.indices = m.indices;
    out.values = m.values;
    return out;
}

Dbsr
dbsrFromBsr(const Bsr &m)
{
    Dbsr out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.blockSize = m.blockSize;
    out.blockRows = m.blockRows;
    out.blockCols = m.blockCols;
    out.indptr.push_back(0);
    int64_t bs2 = static_cast<int64_t>(m.blockSize) * m.blockSize;
    for (int64_t br = 0; br < m.blockRows; ++br) {
        if (m.indptr[br] == m.indptr[br + 1]) {
            continue;
        }
        out.blockRowIndices.push_back(static_cast<int32_t>(br));
        for (int32_t p = m.indptr[br]; p < m.indptr[br + 1]; ++p) {
            out.indices.push_back(m.indices[p]);
            out.values.insert(out.values.end(),
                              m.values.begin() + int64_t(p) * bs2,
                              m.values.begin() + int64_t(p + 1) * bs2);
        }
        out.indptr.push_back(static_cast<int32_t>(out.indices.size()));
    }
    return out;
}

std::vector<float>
dbsrToDense(const Dbsr &m)
{
    std::vector<float> dense(m.rows * m.cols, 0.0f);
    int64_t bs = m.blockSize;
    for (int64_t sr = 0; sr < m.numStoredBlockRows(); ++sr) {
        int64_t br = m.blockRowIndices[sr];
        for (int32_t p = m.indptr[sr]; p < m.indptr[sr + 1]; ++p) {
            int64_t bc = m.indices[p];
            const float *block = &m.values[int64_t(p) * bs * bs];
            for (int64_t ii = 0; ii < bs; ++ii) {
                for (int64_t ji = 0; ji < bs; ++ji) {
                    int64_t r = br * bs + ii;
                    int64_t c = bc * bs + ji;
                    if (r < m.rows && c < m.cols) {
                        dense[r * m.cols + c] = block[ii * bs + ji];
                    }
                }
            }
        }
    }
    return dense;
}

} // namespace format
} // namespace sparsetir
