#include "baselines/sputnik.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel>
sputnikSpmm(const format::Csr &a, int64_t feat)
{
    RowSplitParams params;
    params.rowsPerBlock = 4;
    params.sortRows = true;       // row swizzle load balancing
    params.registerAccum = true;
    params.vectorWidth = 4;
    params.unrollDiscount = 0.3;
    return std::make_unique<RowSplitSpmmKernel>("sputnik_spmm", a, feat,
                                                params);
}

std::unique_ptr<gpusim::Kernel>
sputnikSddmm(const format::Csr &a, int64_t feat)
{
    // Sputnik's SDDMM targets pruned-weight densities; on graph
    // sparsity its 1-D tiling degrades to near-scalar efficiency.
    SddmmParams params;
    params.nnzPerBlock = 4;
    params.vectorWidth = 1;
    params.twoStageReduction = false;
    return std::make_unique<SddmmKernel>("sputnik_sddmm", a, feat,
                                         params);
}

} // namespace baselines
} // namespace sparsetir
