/**
 * @file
 * Coordinate (COO) storage and conversions.
 */

#ifndef SPARSETIR_FORMAT_COO_H_
#define SPARSETIR_FORMAT_COO_H_

#include <cstdint>
#include <vector>

#include "format/csr.h"

namespace sparsetir {
namespace format {

/** COO triples; canonical form is row-major sorted and deduplicated. */
struct Coo
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> row;
    std::vector<int32_t> col;
    std::vector<float> val;

    int64_t nnz() const { return static_cast<int64_t>(row.size()); }
};

/** Sort row-major and merge duplicate coordinates (values add). */
void cooCanonicalize(Coo &m);

/** COO -> CSR (canonicalizes first). */
Csr csrFromCoo(Coo m);

/** CSR -> COO. */
Coo cooFromCsr(const Csr &m);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_COO_H_
