/**
 * @file
 * Reproduces Figure 14: normalized SDDMM speedup against the DGL
 * (FeatGraph) baseline for {cuSPARSE, Sputnik, dgSPARSE-csr,
 * dgSPARSE-coo, TACO, SparseTIR} on the Table 1 graphs.
 */

#include <cstdio>
#include <map>

#include "autotune/search.h"
#include "baselines/cusparse.h"
#include "baselines/dgsparse.h"
#include "baselines/frameworks.h"
#include "baselines/sputnik.h"
#include "baselines/taco.h"
#include "baselines/vendor_constants.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "graph/datasets.h"

using namespace sparsetir;

namespace {

void
runDevice(const gpusim::GpuSpec &spec, const std::vector<int64_t> &feats)
{
    gpusim::Device device(spec);
    std::vector<std::string> impls = {"cuSPARSE", "Sputnik",
                                      "dgSP-csr", "dgSP-coo", "TACO",
                                      "SparseTIR"};
    std::printf("\n--- %s ---\n", spec.name.c_str());
    std::printf("%-15s %9s", "graph", "dgl");
    for (const auto &impl : impls) {
        std::printf("%11s", impl.c_str());
    }
    std::printf("\n");

    for (const auto &dataset : graph::table1Datasets()) {
        graph::DatasetSpec ds = dataset;
        if (benchutil::fastMode()) {
            ds.nodes = std::min<int64_t>(ds.nodes, 20000);
            ds.edges = std::min<int64_t>(ds.edges, 300000);
        }
        format::Csr g = graph::generateDataset(ds);
        std::map<std::string, std::vector<double>> ratios;
        for (int64_t feat : feats) {
            gpusim::SimOptions opts;
            auto dgl = baselines::dglSddmm(g, feat);
            opts.efficiency = baselines::kFrameworkEfficiency;
            double base = device.launch(*dgl, opts).timeMs;

            auto record = [&](const std::string &name,
                              gpusim::Kernel &kernel,
                              double efficiency) {
                gpusim::SimOptions o;
                o.efficiency = efficiency;
                ratios[name].push_back(
                    base / device.launch(kernel, o).timeMs);
            };
            auto cus = baselines::cusparseSddmm(g, feat);
            record("cuSPARSE", *cus, baselines::kCusparseEfficiency);
            auto spk = baselines::sputnikSddmm(g, feat);
            record("Sputnik", *spk, baselines::kSputnikEfficiency);
            auto dgc = baselines::dgsparseSddmmCsr(g, feat);
            record("dgSP-csr", *dgc, baselines::kDgsparseEfficiency);
            auto dgo = baselines::dgsparseSddmmCoo(g, feat);
            record("dgSP-coo", *dgo, baselines::kDgsparseEfficiency);
            auto tac = baselines::tacoSddmm(g, feat);
            record("TACO", *tac, baselines::kTacoEfficiency);

            // SparseTIR: fused iteration + rfactor two-stage
            // reduction. Schedule parameters are tuned on graphs
            // small enough to sweep; the large graphs reuse the
            // default (which the sweep selects there anyway).
            double st_ms;
            if (g.nnz() < 1500000) {
                st_ms = autotune::tuneSddmm(g, feat, device).timeMs;
            } else {
                auto shared = std::make_shared<core::BindingSet>();
                runtime::NDArray x({g.rows * feat},
                                   ir::DataType::float32());
                runtime::NDArray y({feat * g.cols},
                                   ir::DataType::float32());
                runtime::NDArray nz({g.nnz()},
                                    ir::DataType::float32());
                shared->external("X_data", &x);
                shared->external("Y_data", &y);
                shared->external("B_data", &nz);
                auto kernel = core::compileSddmm(g, feat, shared);
                gpusim::SimOptions o;
                o.efficiency = baselines::kSparseTirEfficiency;
                st_ms = device.launch(kernel->simKernel(), o).timeMs;
            }
            ratios["SparseTIR"].push_back(base / st_ms);
        }
        std::printf("%-15s %9.2f", ds.name.c_str(), 1.0);
        for (const auto &impl : impls) {
            std::printf("%11.2f", benchutil::geomean(ratios[impl]));
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Figure 14: normalized SDDMM speedup vs DGL/FeatGraph "
        "(geomean over feature sizes)");
    std::vector<int64_t> feats =
        benchutil::fastMode() ? std::vector<int64_t>{32}
                              : std::vector<int64_t>{32, 64, 128};
    runDevice(gpusim::GpuSpec::v100(), feats);
    runDevice(gpusim::GpuSpec::rtx3070(), feats);
    std::printf(
        "\nPaper (V100): SparseTIR 1.4-2.3x vs dgl; dgSPARSE-coo "
        "1.0-2.0x; cuSPARSE and Sputnik\ncollapse to ~0.0-0.2x on "
        "graph sparsity; TACO 0.3-1.0x.\nExpected shape: SparseTIR >= "
        "dgSPARSE > dgl >> cuSPARSE/Sputnik.\n");
    return 0;
}
