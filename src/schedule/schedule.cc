#include "schedule/schedule.h"

#include <algorithm>
#include <map>
#include <set>

#include "ir/analysis.h"
#include "ir/functor.h"
#include "ir/simplify.h"
#include "ir/structural_equal.h"

namespace sparsetir {
namespace schedule {

using namespace ir;

namespace {

/** Non-owning Stmt view of a node inside an owned tree. */
Stmt
borrowStmt(const StmtNode *node)
{
    return Stmt(Stmt(), node);
}

/** Find the For node with the given loop var name; error if absent. */
class LoopFinder : public StmtVisitor
{
  public:
    explicit LoopFinder(const std::string &name) : name_(name) {}

    const ForNode *found = nullptr;

  protected:
    void
    visitFor(const ForNode *op) override
    {
        if (op->loopVar->name == name_) {
            ICHECK(found == nullptr)
                << "duplicate loop name '" << name_ << "'";
            found = op;
        }
        StmtVisitor::visitFor(op);
    }

  private:
    const std::string &name_;
};

const ForNode *
findLoop(const PrimFunc &func, const std::string &name)
{
    LoopFinder finder(name);
    finder.visitStmt(func->body);
    USER_CHECK(finder.found != nullptr)
        << "no loop named '" << name << "' in function '" << func->name
        << "'";
    return finder.found;
}

/** Find a block by name; error if absent. */
class BlockFinder : public StmtVisitor
{
  public:
    explicit BlockFinder(const std::string &name) : name_(name) {}

    const BlockNode *found = nullptr;

  protected:
    void
    visitBlock(const BlockNode *op) override
    {
        if (op->name == name_) {
            found = op;
        }
        StmtVisitor::visitBlock(op);
    }

  private:
    const std::string &name_;
};

const BlockNode *
findBlock(const PrimFunc &func, const std::string &name)
{
    BlockFinder finder(name);
    finder.visitStmt(func->body);
    USER_CHECK(finder.found != nullptr)
        << "no block named '" << name << "' in function '" << func->name
        << "'";
    return finder.found;
}

/** Replace one statement node (by address) with another. */
class StmtReplacer : public StmtMutator
{
  public:
    StmtReplacer(const StmtNode *target, Stmt replacement)
        : target_(target), replacement_(std::move(replacement))
    {}

    Stmt
    mutateStmt(const Stmt &s) override
    {
        if (s.get() == target_) {
            return replacement_;
        }
        return StmtMutator::mutateStmt(s);
    }

  private:
    const StmtNode *target_;
    Stmt replacement_;
};

Stmt
replaceStmt(const Stmt &root, const StmtNode *target, Stmt replacement)
{
    StmtReplacer replacer(target, std::move(replacement));
    return replacer.mutateStmt(root);
}

/** Swap a var for a list of vars in every block's reduceVars. */
class ReduceVarRewriter : public StmtMutator
{
  public:
    ReduceVarRewriter(const VarNode *old_var, std::vector<Var> new_vars)
        : oldVar_(old_var), newVars_(std::move(new_vars))
    {}

  protected:
    Stmt
    mutateBlock(const BlockNode *op, const Stmt &s) override
    {
        Stmt mutated = StmtMutator::mutateBlock(op, s);
        auto current = static_cast<const BlockNode *>(mutated.get());
        bool has = false;
        for (const auto &rv : current->reduceVars) {
            if (rv.get() == oldVar_) {
                has = true;
                break;
            }
        }
        if (!has) {
            return mutated;
        }
        auto node = std::make_shared<BlockNode>(*current);
        std::vector<Var> rewritten;
        for (const auto &rv : node->reduceVars) {
            if (rv.get() == oldVar_) {
                for (const auto &nv : newVars_) {
                    rewritten.push_back(nv);
                }
            } else {
                rewritten.push_back(rv);
            }
        }
        node->reduceVars = std::move(rewritten);
        return node;
    }

  private:
    const VarNode *oldVar_;
    std::vector<Var> newVars_;
};

/** Is `v` a reduction var of any block under `s`? */
bool
isReductionVar(const Stmt &s, const VarNode *v)
{
    class Scanner : public StmtVisitor
    {
      public:
        explicit Scanner(const VarNode *v) : v_(v) {}
        bool found = false;

      protected:
        void
        visitBlock(const BlockNode *op) override
        {
            for (const auto &rv : op->reduceVars) {
                if (rv.get() == v_) {
                    found = true;
                }
            }
            StmtVisitor::visitBlock(op);
        }

      private:
        const VarNode *v_;
    };
    Scanner scanner(v);
    scanner.visitStmt(s);
    return scanner.found;
}

/** Loops (outermost first) on the path from root to a target node. */
class PathCollector : public StmtVisitor
{
  public:
    explicit PathCollector(const StmtNode *target) : target_(target) {}

    std::vector<const ForNode *> path;
    bool done = false;

    void
    visitStmt(const Stmt &s) override
    {
        if (done) {
            return;
        }
        if (s.get() == target_) {
            done = true;
            path = stack_;
            return;
        }
        if (s->kind == StmtKind::kFor) {
            stack_.push_back(static_cast<const ForNode *>(s.get()));
            StmtVisitor::visitStmt(s);
            if (!done) {
                stack_.pop_back();
            }
            return;
        }
        StmtVisitor::visitStmt(s);
    }

  private:
    const StmtNode *target_;
    std::vector<const ForNode *> stack_;
};

std::vector<const ForNode *>
loopsAbove(const PrimFunc &func, const StmtNode *target)
{
    PathCollector collector(target);
    collector.visitStmt(func->body);
    ICHECK(collector.done) << "target statement not found in function";
    return collector.path;
}

Stmt
makeFor(const ForNode *proto, Var loop_var, Expr min_value, Expr extent,
        Stmt body)
{
    auto node = std::make_shared<ForNode>(
        std::move(loop_var), std::move(min_value), std::move(extent),
        proto->forKind, std::move(body), proto->threadTag);
    node->annotations = proto->annotations;
    return node;
}

} // namespace

Schedule::Schedule(PrimFunc func) : func_(copyFunc(func))
{
    USER_CHECK(func_->stage != IrStage::kStage1)
        << "Stage II schedules require a lowered function; apply "
        << "lowerSparseIterations first";
}

std::vector<std::string>
Schedule::getLoops(const std::string &block_name) const
{
    const BlockNode *block = findBlock(func_, block_name);
    std::vector<std::string> names;
    for (const ForNode *loop : loopsAbove(func_, block)) {
        names.push_back(loop->loopVar->name);
    }
    return names;
}

std::pair<std::string, std::string>
Schedule::split(const std::string &name, int64_t factor)
{
    USER_CHECK(factor > 0) << "split factor must be positive";
    const ForNode *loop = findLoop(func_, name);
    USER_CHECK(isConstInt(loop->minValue, 0))
        << "split expects a zero-based loop";

    Var outer = var(name + "_o", loop->loopVar->dtype);
    Var inner = var(name + "_i", loop->loopVar->dtype);
    Expr factor_imm = intImm(factor, loop->loopVar->dtype);
    Expr fused = add(mul(outer, factor_imm), inner);

    std::map<const VarNode *, Expr> subst{{loop->loopVar.get(), fused}};
    Stmt body = substitute(loop->body, subst);

    int64_t const_extent = 0;
    bool divisible = tryConstInt(simplify(loop->extent), &const_extent) &&
                     const_extent % factor == 0;
    if (!divisible) {
        body = ifThenElse(lt(fused, loop->extent), body);
    }

    Expr outer_extent =
        divisible
            ? intImm(const_extent / factor, loop->loopVar->dtype)
            : simplify(floorDiv(
                  add(loop->extent,
                      intImm(factor - 1, loop->loopVar->dtype)),
                  factor_imm));

    // Inner loop inherits the original kind; outer becomes serial.
    auto inner_loop = std::make_shared<ForNode>(
        inner, intImm(0), factor_imm, loop->forKind, body,
        loop->threadTag);
    inner_loop->annotations = loop->annotations;
    Stmt outer_loop = forLoop(outer, intImm(0), outer_extent, inner_loop);

    Stmt new_body = replaceStmt(func_->body, loop, outer_loop);
    ReduceVarRewriter rv_rewriter(loop->loopVar.get(), {outer, inner});
    func_->body = rv_rewriter.mutateStmt(new_body);
    return {outer->name, inner->name};
}

std::string
Schedule::fuse(const std::string &outer, const std::string &inner)
{
    const ForNode *outer_loop = findLoop(func_, outer);
    USER_CHECK(outer_loop->body->kind == StmtKind::kFor)
        << "fuse requires '" << inner << "' directly nested in '" << outer
        << "'";
    auto inner_loop =
        static_cast<const ForNode *>(outer_loop->body.get());
    USER_CHECK(inner_loop->loopVar->name == inner)
        << "loop directly inside '" << outer << "' is '"
        << inner_loop->loopVar->name << "', not '" << inner << "'";
    USER_CHECK(isConstInt(outer_loop->minValue, 0) &&
               isConstInt(inner_loop->minValue, 0))
        << "fuse expects zero-based loops";

    bool outer_reduce =
        isReductionVar(func_->body, outer_loop->loopVar.get());
    bool inner_reduce =
        isReductionVar(func_->body, inner_loop->loopVar.get());
    USER_CHECK(outer_reduce == inner_reduce)
        << "cannot fuse a spatial loop with a reduction loop";

    Var fused =
        var(outer + "_" + inner + "_f", outer_loop->loopVar->dtype);
    Expr inner_extent = inner_loop->extent;
    std::map<const VarNode *, Expr> subst{
        {outer_loop->loopVar.get(), floorDiv(fused, inner_extent)},
        {inner_loop->loopVar.get(), floorMod(fused, inner_extent)}};
    Stmt body = substitute(inner_loop->body, subst);
    Stmt fused_loop =
        forLoop(fused, intImm(0),
                simplify(mul(outer_loop->extent, inner_extent)), body);

    Stmt new_body = replaceStmt(func_->body, outer_loop, fused_loop);
    ReduceVarRewriter rw1(outer_loop->loopVar.get(), {fused});
    new_body = rw1.mutateStmt(new_body);
    ReduceVarRewriter rw2(inner_loop->loopVar.get(), {});
    func_->body = rw2.mutateStmt(new_body);
    return fused->name;
}

void
Schedule::reorder(const std::vector<std::string> &names)
{
    USER_CHECK(names.size() >= 2) << "reorder needs at least two loops";
    // The outermost named loop is the one with no named loop above it.
    const ForNode *top = nullptr;
    for (const auto &name : names) {
        const ForNode *loop = findLoop(func_, name);
        bool has_named_above = false;
        for (const ForNode *anc : loopsAbove(func_, loop)) {
            if (std::find(names.begin(), names.end(),
                          anc->loopVar->name) != names.end()) {
                has_named_above = true;
                break;
            }
        }
        if (!has_named_above) {
            USER_CHECK(top == nullptr)
                << "loops to reorder are not members of one nest";
            top = loop;
        }
    }
    ICHECK(top != nullptr);

    // Walk the straight-line chain from `top` until all named loops
    // are found; no block boundaries may be crossed.
    std::vector<const ForNode *> chain;
    const StmtNode *cursor = top;
    size_t named_found = 0;
    while (true) {
        USER_CHECK(cursor->kind == StmtKind::kFor)
            << "reorder would cross a non-loop statement (TensorIR "
            << "block boundary)";
        auto loop = static_cast<const ForNode *>(cursor);
        chain.push_back(loop);
        if (std::find(names.begin(), names.end(),
                      loop->loopVar->name) != names.end()) {
            ++named_found;
        }
        if (named_found == names.size()) {
            break;
        }
        cursor = loop->body.get();
    }

    // Extents must not depend on vars of other loops in the chain.
    std::set<const VarNode *> chain_vars;
    for (const ForNode *loop : chain) {
        chain_vars.insert(loop->loopVar.get());
    }
    for (const ForNode *loop : chain) {
        for (const VarNode *v : collectVars(loop->extent)) {
            USER_CHECK(!chain_vars.count(v))
                << "loop '" << loop->loopVar->name
                << "' has a data-dependent extent inside the reordered "
                << "nest";
        }
    }

    // Permute: named slots take the requested order, unnamed loops
    // keep their positions.
    std::vector<const ForNode *> result = chain;
    std::vector<size_t> named_positions;
    for (size_t i = 0; i < chain.size(); ++i) {
        if (std::find(names.begin(), names.end(),
                      chain[i]->loopVar->name) != names.end()) {
            named_positions.push_back(i);
        }
    }
    ICHECK_EQ(named_positions.size(), names.size());
    for (size_t k = 0; k < names.size(); ++k) {
        result[named_positions[k]] = findLoop(func_, names[k]);
    }

    Stmt body = chain.back()->body;
    for (size_t i = result.size(); i-- > 0;) {
        const ForNode *proto = result[i];
        body = makeFor(proto, proto->loopVar, proto->minValue,
                       proto->extent, body);
    }
    func_->body = replaceStmt(func_->body, top, body);
}

void
Schedule::bind(const std::string &name, const std::string &thread_tag)
{
    const ForNode *loop = findLoop(func_, name);
    USER_CHECK(!isReductionVar(func_->body, loop->loopVar.get()))
        << "cannot bind reduction loop '" << name
        << "' to threads without atomics; rfactor it first";
    auto node = std::make_shared<ForNode>(*loop);
    node->forKind = ForKind::kThreadBinding;
    node->threadTag = thread_tag;
    func_->body = replaceStmt(func_->body, loop, node);
}

void
Schedule::vectorize(const std::string &name)
{
    const ForNode *loop = findLoop(func_, name);
    int64_t extent = 0;
    USER_CHECK(tryConstInt(simplify(loop->extent), &extent))
        << "vectorize requires a constant loop extent";
    auto node = std::make_shared<ForNode>(*loop);
    node->forKind = ForKind::kVectorized;
    func_->body = replaceStmt(func_->body, loop, node);
}

void
Schedule::unroll(const std::string &name)
{
    const ForNode *loop = findLoop(func_, name);
    auto node = std::make_shared<ForNode>(*loop);
    node->forKind = ForKind::kUnrolled;
    func_->body = replaceStmt(func_->body, loop, node);
}

void
Schedule::parallel(const std::string &name)
{
    const ForNode *loop = findLoop(func_, name);
    auto node = std::make_shared<ForNode>(*loop);
    node->forKind = ForKind::kParallel;
    func_->body = replaceStmt(func_->body, loop, node);
}

namespace {

/**
 * Collect the if-conditions that dominate `block` under `s` and
 * reference no reduction variable. These are spatial guards — e.g. a
 * non-divisible split's tail predicate `if (k_o*tx + k_i < feat)` —
 * and the cache-write epilogue MUST replicate them: the write-back
 * stores the block's spatial indices outside the reduction subtree,
 * so an unguarded epilogue executes the padded tail iterations the
 * guard exists to skip and stores out of bounds. (Found by the
 * differential fuzzer on hyb SpMM with feat % threadX != 0; every
 * power-of-two feat divides the clamped threadX, which is why the
 * fixed-shape suites never hit it.) Conditions referencing reduction
 * variables vary per reduction step and stay inside the subtree.
 * Returns true when `block` lies under `s`; guards accumulate only
 * along the found path.
 */
bool
collectSpatialGuards(const StmtNode *s, const BlockNode *block,
                     const std::set<const VarNode *> &reduce_set,
                     std::vector<Expr> *guards)
{
    if (s == nullptr) {
        return false;
    }
    switch (s->kind) {
      case StmtKind::kBlock: {
        auto *node = static_cast<const BlockNode *>(s);
        if (node == block) {
            return true;
        }
        return collectSpatialGuards(node->body.get(), block,
                                    reduce_set, guards);
      }
      case StmtKind::kFor:
        return collectSpatialGuards(
            static_cast<const ForNode *>(s)->body.get(), block,
            reduce_set, guards);
      case StmtKind::kLetStmt:
        return collectSpatialGuards(
            static_cast<const LetStmtNode *>(s)->body.get(), block,
            reduce_set, guards);
      case StmtKind::kAllocate:
        return collectSpatialGuards(
            static_cast<const AllocateNode *>(s)->body.get(), block,
            reduce_set, guards);
      case StmtKind::kSeq: {
        auto *node = static_cast<const SeqStmtNode *>(s);
        for (const Stmt &child : node->seq) {
            if (collectSpatialGuards(child.get(), block, reduce_set,
                                     guards)) {
                return true;
            }
        }
        return false;
      }
      case StmtKind::kIfThenElse: {
        auto *node = static_cast<const IfThenElseNode *>(s);
        bool spatial = true;
        for (const VarNode *v : collectVars(node->cond)) {
            if (reduce_set.count(v)) {
                spatial = false;
                break;
            }
        }
        if (collectSpatialGuards(node->thenBody.get(), block,
                                 reduce_set, guards)) {
            if (spatial) {
                guards->push_back(node->cond);
            }
            return true;
        }
        if (collectSpatialGuards(node->elseBody.get(), block,
                                 reduce_set, guards)) {
            // No schedule primitive nests a block in an else branch;
            // replicating would need the negated condition. Fail
            // loudly rather than emit an unguarded epilogue.
            ICHECK(!spatial)
                << "cache_write cannot replicate an else-branch "
                   "spatial guard in its epilogue";
            return true;
        }
        return false;
      }
      default:
        return false;
    }
}

} // namespace

void
Schedule::cacheWrite(const std::string &block_name,
                     const std::string &buffer_name, bool accumulate)
{
    const BlockNode *block = findBlock(func_, block_name);
    USER_CHECK(!block->reduceVars.empty())
        << "cache_write targets a reduction block";

    std::vector<BufferAccess> accesses =
        collectBufferAccesses(block->body);
    Buffer target;
    std::vector<Expr> target_indices;
    for (const auto &access : accesses) {
        if (access.isWrite && access.buffer->name == buffer_name) {
            target = access.buffer;
            target_indices = access.indices;
            break;
        }
    }
    USER_CHECK(target != nullptr)
        << "block '" << block_name << "' does not write buffer '"
        << buffer_name << "'";

    std::set<const VarNode *> reduce_set;
    for (const auto &rv : block->reduceVars) {
        reduce_set.insert(rv.get());
    }
    for (const auto &idx : target_indices) {
        for (const VarNode *v : collectVars(idx)) {
            USER_CHECK(!reduce_set.count(v))
                << "cache_write: store index depends on reduction var '"
                << v->name << "'";
        }
    }

    auto path = loopsAbove(func_, block);
    const ForNode *outer_reduce = nullptr;
    for (const ForNode *loop : path) {
        bool is_reduce = reduce_set.count(loop->loopVar.get()) > 0;
        if (outer_reduce == nullptr) {
            if (is_reduce) {
                outer_reduce = loop;
            }
        } else {
            USER_CHECK(is_reduce)
                << "cache_write requires reduction loops innermost; "
                << "loop '" << loop->loopVar->name
                << "' is spatial but nested inside reduction loop '"
                << outer_reduce->loopVar->name << "'";
        }
    }
    USER_CHECK(outer_reduce != nullptr)
        << "no reduction loop encloses block '" << block_name << "'";

    Buffer accumulator =
        denseBuffer(target->name + "_local", {intImm(1)}, target->dtype,
                    MemScope::kLocal);

    class TargetRewriter : public StmtMutator
    {
      public:
        TargetRewriter(const BufferNode *target, Buffer accumulator)
            : target_(target), acc_(std::move(accumulator))
        {}

      protected:
        Expr
        mutateBufferLoad(const BufferLoadNode *op, const Expr &e) override
        {
            if (op->buffer.get() == target_) {
                return bufferLoad(acc_, {intImm(0)});
            }
            return StmtMutator::mutateBufferLoad(op, e);
        }

        Stmt
        mutateBufferStore(const BufferStoreNode *op,
                          const Stmt &s) override
        {
            Expr value = mutateExpr(op->value);
            if (op->buffer.get() == target_) {
                return bufferStore(acc_, {intImm(0)}, std::move(value));
            }
            std::vector<Expr> indices;
            for (const auto &idx : op->indices) {
                indices.push_back(mutateExpr(idx));
            }
            return bufferStore(op->buffer, std::move(indices),
                               std::move(value));
        }

      private:
        const BufferNode *target_;
        Buffer acc_;
    };

    TargetRewriter rewriter(target.get(), accumulator);
    auto new_block = std::make_shared<BlockNode>(*block);
    new_block->body = rewriter.mutateStmt(block->body);
    if (new_block->init != nullptr) {
        new_block->init = rewriter.mutateStmt(new_block->init);
    }

    // Spatial guards dominating the block INSIDE the reduction
    // subtree (a non-divisible split's tail predicate) also govern
    // the write-back's indices; replicate them around the epilogue or
    // the padded tail stores out of bounds.
    std::vector<Expr> guards;
    collectSpatialGuards(outer_reduce, block, reduce_set, &guards);

    Stmt reduce_subtree =
        replaceStmt(borrowStmt(outer_reduce), block, new_block);
    Expr result = bufferLoad(accumulator, {intImm(0)});
    if (accumulate) {
        result = add(bufferLoad(target, target_indices),
                     std::move(result));
    }
    Stmt write_back =
        bufferStore(target, target_indices, std::move(result));
    for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
        write_back = ifThenElse(*it, write_back);
    }
    Stmt replacement =
        allocate(accumulator, seq({reduce_subtree, write_back}));
    func_->body = replaceStmt(func_->body, outer_reduce, replacement);
}

void
Schedule::cacheRead(const std::string &loop_name,
                    const std::string &buffer_name, MemScope scope)
{
    const ForNode *loop = findLoop(func_, loop_name);

    std::vector<BufferAccess> accesses =
        collectBufferAccesses(loop->body);
    Buffer target;
    for (const auto &access : accesses) {
        if (access.buffer->name == buffer_name) {
            USER_CHECK(!access.isWrite)
                << "cache_read target '" << buffer_name
                << "' is written inside loop '" << loop_name << "'";
            target = access.buffer;
        }
    }
    USER_CHECK(target != nullptr)
        << "buffer '" << buffer_name << "' is not read inside loop '"
        << loop_name << "'";
    // Sparse buffers are stageable when every axis is dense-fixed
    // (positions coincide with coordinates, so the rectangular region
    // analysis below is exact).
    for (const auto &axis : target->axes) {
        USER_CHECK(axis->kind == ir::AxisKind::kDenseFixed)
            << "cache_read requires dense(-fixed) buffer '"
            << buffer_name << "'";
    }

    // Bounds of loops strictly inside `loop`.
    std::map<const VarNode *, Interval> inner_bounds;
    class InnerLoopScan : public StmtVisitor
    {
      public:
        std::map<const VarNode *, Interval> *bounds = nullptr;

      protected:
        void
        visitFor(const ForNode *op) override
        {
            int64_t min_v = 0;
            int64_t extent = 0;
            if (tryConstInt(simplify(op->minValue), &min_v) &&
                tryConstInt(simplify(op->extent), &extent) &&
                extent > 0) {
                (*bounds)[op->loopVar.get()] =
                    Interval::range(min_v, min_v + extent - 1);
            }
            StmtVisitor::visitFor(op);
        }
    } scan;
    scan.bounds = &inner_bounds;
    scan.visitStmt(loop->body);

    size_t ndim = target->ndim();
    std::vector<Expr> base(ndim);
    std::vector<int64_t> extent(ndim, 1);
    std::map<const VarNode *, Expr> zero_subst;
    for (const auto &[v, bounds] : inner_bounds) {
        zero_subst[v] = intImm(bounds.lo);
    }
    bool have_pattern = false;
    for (const auto &access : accesses) {
        if (access.buffer->name != buffer_name) {
            continue;
        }
        for (size_t d = 0; d < ndim; ++d) {
            Expr base_d =
                simplify(substitute(access.indices[d], zero_subst));
            Interval delta = boundsOf(
                simplify(sub(access.indices[d], base_d)), inner_bounds);
            USER_CHECK(delta.hasLo && delta.hasHi && delta.lo == 0)
                << "cache_read: access to '" << buffer_name << "' dim "
                << d << " is not a base+offset pattern";
            int64_t ext = delta.hi + 1;
            if (!have_pattern) {
                base[d] = base_d;
            } else {
                USER_CHECK(structuralEqual(base[d], base_d))
                    << "cache_read: accesses to '" << buffer_name
                    << "' have mismatched bases in dim " << d;
            }
            extent[d] = std::max(extent[d], ext);
        }
        have_pattern = true;
    }

    std::vector<Expr> scratch_shape;
    for (size_t d = 0; d < ndim; ++d) {
        scratch_shape.push_back(intImm(extent[d]));
    }
    Buffer scratch =
        denseBuffer(target->name + "_" + memScopeName(scope),
                    scratch_shape, target->dtype, scope);

    std::vector<Var> copy_vars;
    std::vector<Expr> src_indices;
    std::vector<Expr> dst_indices;
    for (size_t d = 0; d < ndim; ++d) {
        Var cv = var(target->name + "_c" + std::to_string(d));
        copy_vars.push_back(cv);
        src_indices.push_back(add(base[d], cv));
        dst_indices.push_back(cv);
    }
    Stmt copy = bufferStore(scratch, dst_indices,
                            bufferLoad(target, src_indices));
    for (size_t d = ndim; d-- > 0;) {
        copy = forLoop(copy_vars[d], intImm(0), intImm(extent[d]), copy);
    }
    copy = block(target->name + "_" + memScopeName(scope) + "_copy",
                 copy);

    class AccessRemap : public StmtMutator
    {
      public:
        AccessRemap(const BufferNode *target, Buffer scratch,
                    const std::vector<Expr> &base)
            : target_(target), scratch_(std::move(scratch)), base_(base)
        {}

      protected:
        Expr
        mutateBufferLoad(const BufferLoadNode *op, const Expr &e) override
        {
            if (op->buffer.get() != target_) {
                return StmtMutator::mutateBufferLoad(op, e);
            }
            std::vector<Expr> indices;
            for (size_t d = 0; d < op->indices.size(); ++d) {
                indices.push_back(
                    simplify(sub(op->indices[d], base_[d])));
            }
            return bufferLoad(scratch_, std::move(indices));
        }

      private:
        const BufferNode *target_;
        Buffer scratch_;
        const std::vector<Expr> &base_;
    };

    AccessRemap remap(target.get(), scratch, base);
    Stmt new_inner = remap.mutateStmt(loop->body);
    Stmt new_body = allocate(scratch, seq({copy, new_inner}));
    Stmt new_loop = makeFor(loop, loop->loopVar, loop->minValue,
                            loop->extent, new_body);
    func_->body = replaceStmt(func_->body, loop, new_loop);
}

void
Schedule::rfactor(const std::string &block_name,
                  const std::string &loop_name)
{
    const BlockNode *block = findBlock(func_, block_name);
    const ForNode *loop = findLoop(func_, loop_name);
    std::set<const VarNode *> reduce_set;
    for (const auto &rv : block->reduceVars) {
        reduce_set.insert(rv.get());
    }
    USER_CHECK(reduce_set.count(loop->loopVar.get()))
        << "'" << loop_name << "' is not a reduction loop of block '"
        << block_name << "'";

    USER_CHECK(block->body->kind == StmtKind::kBufferStore)
        << "rfactor expects a single-store reduction block";
    auto store = static_cast<const BufferStoreNode *>(block->body.get());
    Buffer target = store->buffer;
    for (const auto &idx : store->indices) {
        for (const VarNode *v : collectVars(idx)) {
            USER_CHECK(!reduce_set.count(v))
                << "rfactor: store index depends on a reduction var";
        }
    }

    int64_t loop_extent = 0;
    USER_CHECK(tryConstInt(simplify(loop->extent), &loop_extent))
        << "rfactor requires a constant extent for loop '" << loop_name
        << "'";

    Buffer partial =
        denseBuffer(target->name + "_rf", {intImm(loop_extent)},
                    target->dtype, MemScope::kLocal);

    class PartialRewriter : public StmtMutator
    {
      public:
        PartialRewriter(const BufferNode *target, Buffer partial, Var r)
            : target_(target), partial_(std::move(partial)),
              r_(std::move(r))
        {}

      protected:
        Expr
        mutateBufferLoad(const BufferLoadNode *op, const Expr &e) override
        {
            if (op->buffer.get() == target_) {
                return bufferLoad(partial_, {Expr(r_)});
            }
            return StmtMutator::mutateBufferLoad(op, e);
        }

        Stmt
        mutateBufferStore(const BufferStoreNode *op,
                          const Stmt &s) override
        {
            Expr value = mutateExpr(op->value);
            if (op->buffer.get() == target_) {
                return bufferStore(partial_, {Expr(r_)},
                                   std::move(value));
            }
            std::vector<Expr> indices;
            for (const auto &idx : op->indices) {
                indices.push_back(mutateExpr(idx));
            }
            return bufferStore(op->buffer, std::move(indices),
                               std::move(value));
        }

      private:
        const BufferNode *target_;
        Buffer partial_;
        Var r_;
    };

    PartialRewriter rewriter(target.get(), partial, loop->loopVar);
    auto new_block = std::make_shared<BlockNode>(*block);
    new_block->body = rewriter.mutateStmt(block->body);
    if (new_block->init != nullptr) {
        new_block->init = rewriter.mutateStmt(new_block->init);
    }
    // Partition the remaining reduce vars: loops enclosing the
    // factored loop keep gating the final reduction's init; loops
    // inside it gate the partial accumulator's init.
    std::set<const VarNode *> outer_reduce_vars;
    for (const ForNode *anc : loopsAbove(func_, loop)) {
        if (reduce_set.count(anc->loopVar.get())) {
            outer_reduce_vars.insert(anc->loopVar.get());
        }
    }
    std::vector<Var> inner_remaining;
    std::vector<Var> outer_remaining;
    for (const auto &rv : new_block->reduceVars) {
        if (rv.get() == loop->loopVar.get()) {
            continue;
        }
        if (outer_reduce_vars.count(rv.get())) {
            outer_remaining.push_back(rv);
        } else {
            inner_remaining.push_back(rv);
        }
    }
    new_block->reduceVars = std::move(inner_remaining);

    Stmt partial_subtree =
        replaceStmt(borrowStmt(loop), block, new_block);

    Var r2 = var(loop_name + "_rf", loop->loopVar->dtype);
    Stmt final_update = bufferStore(
        target, store->indices,
        add(bufferLoad(target, store->indices),
            bufferLoad(partial, {Expr(r2)})));
    auto final_block =
        std::make_shared<BlockNode>(block_name + "_rf", final_update);
    final_block->reduceVars = outer_remaining;
    final_block->reduceVars.push_back(r2);
    if (block->init != nullptr) {
        final_block->init = block->init;
    }
    Stmt final_loop =
        forLoop(r2, intImm(0), intImm(loop_extent), final_block);

    Stmt replacement =
        allocate(partial, seq({partial_subtree, final_loop}));
    func_->body = replaceStmt(func_->body, loop, replacement);
}

void
Schedule::tensorize(const std::string &block_name,
                    const std::string &intrinsic)
{
    const BlockNode *block = findBlock(func_, block_name);
    auto node = std::make_shared<BlockNode>(*block);
    node->annotations["tensorize"] = stringImm(intrinsic);
    func_->body = replaceStmt(func_->body, block, node);
}

void
Schedule::annotateBlock(const std::string &block_name,
                        const std::string &key, Expr value)
{
    const BlockNode *block = findBlock(func_, block_name);
    auto node = std::make_shared<BlockNode>(*block);
    node->annotations[key] = std::move(value);
    func_->body = replaceStmt(func_->body, block, node);
}

void
Schedule::annotateLoop(const std::string &loop_name,
                       const std::string &key, Expr value)
{
    const ForNode *loop = findLoop(func_, loop_name);
    auto node = std::make_shared<ForNode>(*loop);
    node->annotations[key] = std::move(value);
    func_->body = replaceStmt(func_->body, loop, node);
}

} // namespace schedule
} // namespace sparsetir
