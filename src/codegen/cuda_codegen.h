/**
 * @file
 * CUDA-like source emission from Stage III functions (paper §3.5).
 *
 * There is no NVCC in this environment, so the emitted source is for
 * inspection and golden testing; functional semantics come from the
 * interpreter and timing from the GPU simulator (see DESIGN.md,
 * substitution 5).
 */

#ifndef SPARSETIR_CODEGEN_CUDA_CODEGEN_H_
#define SPARSETIR_CODEGEN_CUDA_CODEGEN_H_

#include <string>

#include "ir/prim_func.h"

namespace sparsetir {
namespace codegen {

/** Emit a CUDA __global__ kernel for a Stage III function. */
std::string emitCuda(const ir::PrimFunc &func);

} // namespace codegen
} // namespace sparsetir

#endif // SPARSETIR_CODEGEN_CUDA_CODEGEN_H_
