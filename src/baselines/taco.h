/**
 * @file
 * TACO stand-ins: auto-scheduled CSR kernels with compile-time load
 * balancing but no register caching or unrolling (paper §4.2.1: "it
 * does not support caching the partially aggregated result in
 * registers ... the irregularity of the CSR format limits the
 * application of loop unrolling").
 */

#ifndef SPARSETIR_BASELINES_TACO_H_
#define SPARSETIR_BASELINES_TACO_H_

#include <memory>

#include "baselines/models.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel> tacoSpmm(const format::Csr &a,
                                         int64_t feat);

std::unique_ptr<gpusim::Kernel> tacoSddmm(const format::Csr &a,
                                          int64_t feat);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_TACO_H_
