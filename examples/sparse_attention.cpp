/**
 * @file
 * Sparse attention (paper §4.3.1): band and butterfly masks, CSR vs
 * BSR formats, Tensor-Core tensorization — the Longformer /
 * Pixelated Butterfly operators of Figure 16.
 *
 * Build & run:  ./build/examples/sparse_attention
 */

#include <cstdio>

#include "format/bsr.h"
#include "format/dia.h"
#include "graph/attention_masks.h"
#include "model/attention.h"

using namespace sparsetir;

int
main()
{
    model::AttentionConfig cfg;
    cfg.seqLen = 2048;
    cfg.heads = 12;
    cfg.headDim = 64;
    cfg.blockSize = 32;

    format::Csr band = graph::bandMask(cfg.seqLen, 256);
    format::Csr butterfly =
        graph::butterflyMask(cfg.seqLen, cfg.blockSize);
    std::printf("masks over %lldx%lld attention:\n",
                static_cast<long long>(cfg.seqLen),
                static_cast<long long>(cfg.seqLen));
    std::printf("  longformer band: %lld nnz (%.2f%% dense)\n",
                static_cast<long long>(band.nnz()),
                100.0 * band.nnz() / (cfg.seqLen * cfg.seqLen));
    std::printf("  butterfly:       %lld nnz (%.2f%% dense)\n",
                static_cast<long long>(butterfly.nnz()),
                100.0 * butterfly.nnz() / (cfg.seqLen * cfg.seqLen));

    // The band mask is also expressible in DIA — show the format
    // library agreeing with itself.
    format::Dia dia = format::diaFromCsr(band);
    std::printf("  band as DIA: %lld diagonals\n",
                static_cast<long long>(dia.numDiagonals()));

    format::Bsr bsr = format::bsrFromCsr(butterfly, cfg.blockSize);
    std::printf("  butterfly as BSR(32): %lld blocks, %.1f%% block "
                "padding\n\n",
                static_cast<long long>(bsr.nnzBlocks()),
                bsr.paddingRatio() * 100.0);

    gpusim::Device device(gpusim::GpuSpec::v100());
    auto report = [&](const char *op, const char *pattern,
                      const model::AttentionTimes &t) {
        std::printf("%-6s %-11s triton %.3f ms | ST-CSR %.3f ms "
                    "(%.2fx) | ST-BSR %.3f ms (%.2fx)\n",
                    op, pattern, t.tritonMs, t.sparsetirCsrMs,
                    t.tritonMs / t.sparsetirCsrMs, t.sparsetirBsrMs,
                    t.tritonMs / t.sparsetirBsrMs);
    };
    report("SpMM", "longformer",
           model::attentionSpmm(band, cfg, device));
    report("SpMM", "butterfly",
           model::attentionSpmm(butterfly, cfg, device));
    report("SDDMM", "longformer",
           model::attentionSddmm(band, cfg, device));
    report("SDDMM", "butterfly",
           model::attentionSddmm(butterfly, cfg, device));
    std::printf("\nBlock-sparse + tensorize wins; scalar CSR cannot "
                "use Tensor Cores (paper Figure 16).\n");
    return 0;
}
