/**
 * @file
 * Vertical fusion of row-parallel Stage III regions.
 *
 * Where horizontal_fusion concatenates independent kernels along the
 * grid axis, this pass stitches a *pipeline*: kernels that iterate the
 * SAME outer blockIdx.x row space are stripped of their outer loops
 * and their bodies concatenated under one shared row loop, so the
 * whole chain runs per row with no barrier and no materialized
 * intermediate. Producer/consumer tensors named in `locals` are
 * demoted from global parameters to per-row local allocations inside
 * the row loop (the allocation site is what classifies them as
 * private to the verifier's race check), with every access rebased
 * from its flat global offset to a row-relative one.
 *
 * Per-row arithmetic is untouched — only addressing changes — so the
 * fused program is bitwise identical to running the member kernels
 * sequentially, which the dfg differential suite holds as the oracle.
 */

#ifndef SPARSETIR_TRANSFORM_FUSE_REGIONS_H_
#define SPARSETIR_TRANSFORM_FUSE_REGIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/prim_func.h"

namespace sparsetir {
namespace transform {

/**
 * One intermediate tensor to demote into a per-row local. `rowBase`
 * is the flat global offset of row i's first element — written in
 * terms of the FIRST kernel's outer loop variable (every member's
 * loop var is substituted to it) and of buffer objects that appear in
 * the member kernels, e.g. `J_indptr[i]` for an edge tensor or
 * `i * feat` for a dense one. Accesses `T[idx]` become
 * `T_local[idx - rowBase]`; when `idx` is structurally
 * `rowBase + rest` the subtraction folds away.
 */
struct LocalizeSpec
{
    /** Global buffer name to localize. */
    std::string buffer;
    /** Flat offset of the current row's first element. */
    ir::Expr rowBase;
    /** Per-row element count of the local. */
    int64_t extent = 0;
};

/**
 * Fuse `funcs` — each a Stage III kernel whose body is a single
 * blockIdx.x-bound loop of identical extent — into one kernel named
 * `name`. Bodies are concatenated in list order under the first
 * func's loop variable; parameters and buffers are deduplicated by
 * name; buffers named in `locals` are removed from the signature and
 * allocated per row instead.
 */
ir::PrimFunc fuseRowRegions(const std::vector<ir::PrimFunc> &funcs,
                            const std::string &name,
                            const std::vector<LocalizeSpec> &locals);

} // namespace transform
} // namespace sparsetir

#endif // SPARSETIR_TRANSFORM_FUSE_REGIONS_H_
