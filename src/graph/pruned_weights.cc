#include "graph/pruned_weights.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "format/coo.h"
#include "support/logging.h"
#include "support/rng.h"

namespace sparsetir {
namespace graph {

using format::Coo;
using format::Csr;

Csr
blockPrunedWeight(int64_t rows, int64_t cols, int block, double density,
                  double row_keep_fraction, uint64_t seed)
{
    ICHECK_GT(block, 0);
    Rng rng(seed);
    int64_t block_rows = (rows + block - 1) / block;
    int64_t block_cols = (cols + block - 1) / block;
    int64_t keep_rows = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(block_rows *
                                             row_keep_fraction)));
    int64_t target_blocks = std::max<int64_t>(
        1, static_cast<int64_t>(
               std::llround(density * static_cast<double>(block_rows) *
                            static_cast<double>(block_cols))));

    // Choose which block rows stay alive.
    std::vector<int64_t> alive(block_rows);
    for (int64_t i = 0; i < block_rows; ++i) {
        alive[i] = i;
    }
    rng.shuffle(alive);
    alive.resize(keep_rows);

    std::set<std::pair<int64_t, int64_t>> blocks;
    while (static_cast<int64_t>(blocks.size()) < target_blocks) {
        int64_t br = alive[rng.uniformInt(alive.size())];
        int64_t bc = static_cast<int64_t>(rng.uniformInt(block_cols));
        blocks.insert({br, bc});
    }

    Coo coo;
    coo.rows = rows;
    coo.cols = cols;
    for (const auto &[br, bc] : blocks) {
        for (int ii = 0; ii < block; ++ii) {
            for (int ji = 0; ji < block; ++ji) {
                int64_t r = br * block + ii;
                int64_t c = bc * block + ji;
                if (r < rows && c < cols) {
                    coo.row.push_back(static_cast<int32_t>(r));
                    coo.col.push_back(static_cast<int32_t>(c));
                    coo.val.push_back(static_cast<float>(
                        rng.normal() * 0.05));
                }
            }
        }
    }
    return csrFromCoo(std::move(coo));
}

Csr
unstructuredPrunedWeight(int64_t rows, int64_t cols, double density,
                         uint64_t seed)
{
    Rng rng(seed);
    int64_t target = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               density * static_cast<double>(rows) *
               static_cast<double>(cols))));
    // Mild column clustering: half the survivors fall into a hot
    // quarter of the columns.
    int64_t hot_cols = std::max<int64_t>(1, cols / 4);
    std::set<std::pair<int64_t, int64_t>> taken;
    while (static_cast<int64_t>(taken.size()) < target) {
        int64_t r = static_cast<int64_t>(rng.uniformInt(rows));
        int64_t c = rng.uniformReal() < 0.5
                        ? static_cast<int64_t>(rng.uniformInt(hot_cols))
                        : static_cast<int64_t>(rng.uniformInt(cols));
        taken.insert({r, c});
    }
    Coo coo;
    coo.rows = rows;
    coo.cols = cols;
    for (const auto &[r, c] : taken) {
        coo.row.push_back(static_cast<int32_t>(r));
        coo.col.push_back(static_cast<int32_t>(c));
        coo.val.push_back(static_cast<float>(rng.normal() * 0.05));
    }
    return csrFromCoo(std::move(coo));
}

} // namespace graph
} // namespace sparsetir
