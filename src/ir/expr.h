/**
 * @file
 * Expression nodes of the SparseTIR IR.
 *
 * All IR nodes are immutable after construction and shared via
 * std::shared_ptr. Transformation passes rebuild nodes functionally
 * (see ir/functor.h).
 */

#ifndef SPARSETIR_IR_EXPR_H_
#define SPARSETIR_IR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/dtype.h"
#include "support/logging.h"

namespace sparsetir {
namespace ir {

class BufferNode;
using Buffer = std::shared_ptr<const BufferNode>;

/** Discriminator for expression nodes. */
enum class ExprKind : uint8_t {
    kIntImm,
    kFloatImm,
    kStringImm,
    kVar,
    // Binary arithmetic.
    kAdd,
    kSub,
    kMul,
    kFloorDiv,
    kFloorMod,
    kDiv,  // float division
    kMin,
    kMax,
    // Comparisons.
    kEQ,
    kNE,
    kLT,
    kLE,
    kGT,
    kGE,
    // Logic.
    kAnd,
    kOr,
    kNot,
    // Misc.
    kSelect,
    kCast,
    kBufferLoad,
    kRamp,
    kBroadcast,
    kCall,
};

/** Base class of all expressions. */
class ExprNode
{
  public:
    ExprNode(ExprKind kind, DataType dtype) : kind(kind), dtype(dtype) {}
    virtual ~ExprNode() = default;

    ExprKind kind;
    DataType dtype;
};

using Expr = std::shared_ptr<const ExprNode>;

/** Integer immediate. */
class IntImmNode : public ExprNode
{
  public:
    IntImmNode(int64_t value, DataType dtype)
        : ExprNode(ExprKind::kIntImm, dtype), value(value)
    {}

    int64_t value;
};

/** Floating-point immediate. */
class FloatImmNode : public ExprNode
{
  public:
    FloatImmNode(double value, DataType dtype)
        : ExprNode(ExprKind::kFloatImm, dtype), value(value)
    {}

    double value;
};

/** String immediate (used for annotations). */
class StringImmNode : public ExprNode
{
  public:
    explicit StringImmNode(std::string value)
        : ExprNode(ExprKind::kStringImm, DataType::handle()),
          value(std::move(value))
    {}

    std::string value;
};

/**
 * A variable. Identity is by node address: two VarNodes with the same
 * name are distinct variables.
 */
class VarNode : public ExprNode
{
  public:
    VarNode(std::string name, DataType dtype)
        : ExprNode(ExprKind::kVar, dtype), name(std::move(name))
    {}

    std::string name;
};

using Var = std::shared_ptr<const VarNode>;

/** Binary operation (arithmetic, comparison or logic). */
class BinaryNode : public ExprNode
{
  public:
    BinaryNode(ExprKind kind, DataType dtype, Expr a, Expr b)
        : ExprNode(kind, dtype), a(std::move(a)), b(std::move(b))
    {}

    Expr a;
    Expr b;
};

/** Logical negation. */
class NotNode : public ExprNode
{
  public:
    explicit NotNode(Expr a)
        : ExprNode(ExprKind::kNot, DataType::boolean()), a(std::move(a))
    {}

    Expr a;
};

/** Ternary select: cond ? trueValue : falseValue. */
class SelectNode : public ExprNode
{
  public:
    SelectNode(Expr cond, Expr true_value, Expr false_value)
        : ExprNode(ExprKind::kSelect, true_value->dtype),
          cond(std::move(cond)), trueValue(std::move(true_value)),
          falseValue(std::move(false_value))
    {}

    Expr cond;
    Expr trueValue;
    Expr falseValue;
};

/** Type conversion. */
class CastNode : public ExprNode
{
  public:
    CastNode(DataType dtype, Expr value)
        : ExprNode(ExprKind::kCast, dtype), value(std::move(value))
    {}

    Expr value;
};

/**
 * Load from a buffer. In Stage I the indices are coordinates over the
 * buffer's axes; from Stage II on they are positions; in Stage III the
 * buffer is flat and there is exactly one index.
 */
class BufferLoadNode : public ExprNode
{
  public:
    BufferLoadNode(DataType dtype, Buffer buffer, std::vector<Expr> indices)
        : ExprNode(ExprKind::kBufferLoad, dtype), buffer(std::move(buffer)),
          indices(std::move(indices))
    {}

    Buffer buffer;
    std::vector<Expr> indices;
};

/** Vector index expression: base, base+stride, ..., lanes values. */
class RampNode : public ExprNode
{
  public:
    RampNode(Expr base, Expr stride, int lanes)
        : ExprNode(ExprKind::kRamp, base->dtype.withLanes(lanes)),
          base(std::move(base)), stride(std::move(stride)), lanes(lanes)
    {}

    Expr base;
    Expr stride;
    int lanes;
};

/** Broadcast scalar to vector. */
class BroadcastNode : public ExprNode
{
  public:
    BroadcastNode(Expr value, int lanes)
        : ExprNode(ExprKind::kBroadcast, value->dtype.withLanes(lanes)),
          value(std::move(value)), lanes(lanes)
    {}

    Expr value;
    int lanes;
};

/** Builtin operations available through CallNode. */
enum class Builtin : uint8_t {
    /**
     * binary_search(buf, lo, hi, val): smallest p in [lo, hi) with
     * buf[p] >= val (lower bound). Emitted by the sparse iteration
     * lowering pass for coordinate -> position compression (eq. 4).
     */
    kLowerBound,
    /** upper_bound(buf, lo, hi, val): smallest p with buf[p] > val. */
    kUpperBound,
    kExp,
    kLog,
    kSqrt,
    kAbs,
    /** atomic_add(buffer, index, value) -> old value. */
    kAtomicAdd,
    /** Opaque extern call, name carried separately. */
    kExtern,
};

/** Call to a builtin or extern function. */
class CallNode : public ExprNode
{
  public:
    CallNode(DataType dtype, Builtin op, std::vector<Expr> args,
             std::string name = "")
        : ExprNode(ExprKind::kCall, dtype), op(op), args(std::move(args)),
          name(std::move(name))
    {}

    Builtin op;
    std::vector<Expr> args;
    /** Target buffer for search/atomic builtins. */
    Buffer bufferArg;
    std::string name;
};

// ---------------------------------------------------------------------
// Factory helpers
// ---------------------------------------------------------------------

Expr intImm(int64_t value, DataType dtype = DataType::int32());
Expr floatImm(double value, DataType dtype = DataType::float32());
Expr stringImm(std::string value);
Var var(std::string name, DataType dtype = DataType::int32());

Expr add(Expr a, Expr b);
Expr sub(Expr a, Expr b);
Expr mul(Expr a, Expr b);
Expr floorDiv(Expr a, Expr b);
Expr floorMod(Expr a, Expr b);
Expr div(Expr a, Expr b);
Expr min(Expr a, Expr b);
Expr max(Expr a, Expr b);
Expr eq(Expr a, Expr b);
Expr ne(Expr a, Expr b);
Expr lt(Expr a, Expr b);
Expr le(Expr a, Expr b);
Expr gt(Expr a, Expr b);
Expr ge(Expr a, Expr b);
Expr logicalAnd(Expr a, Expr b);
Expr logicalOr(Expr a, Expr b);
Expr logicalNot(Expr a);
Expr select(Expr cond, Expr true_value, Expr false_value);
Expr cast(DataType dtype, Expr value);
Expr bufferLoad(Buffer buffer, std::vector<Expr> indices);
Expr ramp(Expr base, Expr stride, int lanes);
Expr broadcast(Expr value, int lanes);
Expr call(DataType dtype, Builtin op, std::vector<Expr> args,
          Buffer buffer_arg = nullptr);

/** True if e is an IntImm with the given value. */
bool isConstInt(const Expr &e, int64_t value);
/** If e is an IntImm, returns its value, else nullopt-like via ok. */
bool tryConstInt(const Expr &e, int64_t *out);

inline Expr operator+(Expr a, Expr b) { return add(std::move(a), std::move(b)); }
inline Expr operator-(Expr a, Expr b) { return sub(std::move(a), std::move(b)); }
inline Expr operator*(Expr a, Expr b) { return mul(std::move(a), std::move(b)); }

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_EXPR_H_
