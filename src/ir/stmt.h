/**
 * @file
 * Statement nodes of the SparseTIR IR.
 *
 * Stage I programs contain SparseIteration statements; the sparse
 * iteration lowering pass rewrites them into For/Block nests (Stage
 * II); the sparse buffer lowering pass removes all sparse constructs
 * (Stage III).
 */

#ifndef SPARSETIR_IR_STMT_H_
#define SPARSETIR_IR_STMT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/buffer.h"
#include "ir/expr.h"

namespace sparsetir {
namespace ir {

/** Discriminator for statement nodes. */
enum class StmtKind : uint8_t {
    kBufferStore,
    kSeq,
    kFor,
    kBlock,
    kIfThenElse,
    kLetStmt,
    kAllocate,
    kEvaluate,
    kSparseIteration,
};

/** Base class of all statements. */
class StmtNode
{
  public:
    explicit StmtNode(StmtKind kind) : kind(kind) {}
    virtual ~StmtNode() = default;

    StmtKind kind;
};

using Stmt = std::shared_ptr<const StmtNode>;

/** Store a value into a buffer element. */
class BufferStoreNode : public StmtNode
{
  public:
    BufferStoreNode(Buffer buffer, std::vector<Expr> indices, Expr value)
        : StmtNode(StmtKind::kBufferStore), buffer(std::move(buffer)),
          indices(std::move(indices)), value(std::move(value))
    {}

    Buffer buffer;
    std::vector<Expr> indices;
    Expr value;
};

/** Statement sequence. */
class SeqStmtNode : public StmtNode
{
  public:
    explicit SeqStmtNode(std::vector<Stmt> seq)
        : StmtNode(StmtKind::kSeq), seq(std::move(seq))
    {}

    std::vector<Stmt> seq;
};

/** Loop kinds, matching TVM's For annotations. */
enum class ForKind : uint8_t {
    kSerial,
    kParallel,
    kVectorized,
    kUnrolled,
    /** Bound to a GPU thread axis; threadTag names it. */
    kThreadBinding,
};

/** A loop over [min, min+extent). */
class ForNode : public StmtNode
{
  public:
    ForNode(Var loop_var, Expr min_value, Expr extent, ForKind for_kind,
            Stmt body, std::string thread_tag = "")
        : StmtNode(StmtKind::kFor), loopVar(std::move(loop_var)),
          minValue(std::move(min_value)), extent(std::move(extent)),
          forKind(for_kind), body(std::move(body)),
          threadTag(std::move(thread_tag))
    {}

    Var loopVar;
    Expr minValue;
    Expr extent;
    ForKind forKind;
    Stmt body;
    /** "blockIdx.x", "threadIdx.x", ... for kThreadBinding. */
    std::string threadTag;
    std::map<std::string, Expr> annotations;
};

/** A (buffer, per-dimension range) access region. */
struct BufferRegion
{
    Buffer buffer;
    /** Pairs of (min, extent) per dimension. */
    std::vector<std::pair<Expr, Expr>> region;
};

/**
 * TensorIR-style block: an isolation boundary for scheduling.
 * Loops may not be reordered across block boundaries. Blocks carry
 * read/write region annotations (filled by the region analysis step of
 * sparse iteration lowering) and an optional reduction init statement.
 */
class BlockNode : public StmtNode
{
  public:
    BlockNode(std::string name, Stmt body)
        : StmtNode(StmtKind::kBlock), name(std::move(name)),
          body(std::move(body))
    {}

    std::string name;
    Stmt body;
    /** Executed before the first reduction update along reduce axes. */
    Stmt init;
    /**
     * Reduction loop variables governing init: init runs on the
     * iteration where every listed var equals zero (generated loops
     * are normalized to start at 0).
     */
    std::vector<Var> reduceVars;
    std::vector<BufferRegion> reads;
    std::vector<BufferRegion> writes;
    std::map<std::string, Expr> annotations;
};

/** Two-armed conditional; elseBody may be null. */
class IfThenElseNode : public StmtNode
{
  public:
    IfThenElseNode(Expr cond, Stmt then_body, Stmt else_body = nullptr)
        : StmtNode(StmtKind::kIfThenElse), cond(std::move(cond)),
          thenBody(std::move(then_body)), elseBody(std::move(else_body))
    {}

    Expr cond;
    Stmt thenBody;
    Stmt elseBody;
};

/** Bind a value to a variable in scope of body. */
class LetStmtNode : public StmtNode
{
  public:
    LetStmtNode(Var let_var, Expr value, Stmt body)
        : StmtNode(StmtKind::kLetStmt), letVar(std::move(let_var)),
          value(std::move(value)), body(std::move(body))
    {}

    Var letVar;
    Expr value;
    Stmt body;
};

/** Allocate a scratch buffer (shared/local) in scope of body. */
class AllocateNode : public StmtNode
{
  public:
    AllocateNode(Buffer buffer, Stmt body)
        : StmtNode(StmtKind::kAllocate), buffer(std::move(buffer)),
          body(std::move(body))
    {}

    Buffer buffer;
    Stmt body;
};

/** Evaluate an expression for side effects. */
class EvaluateNode : public StmtNode
{
  public:
    explicit EvaluateNode(Expr value)
        : StmtNode(StmtKind::kEvaluate), value(std::move(value))
    {}

    Expr value;
};

/** Spatial vs reduction iterator (the "S"/"R" string of sp_iter). */
enum class IterKind : uint8_t {
    kSpatial,
    kReduction,
};

/**
 * Stage I sparse iteration (paper §3.1): iterate the space composed by
 * `axes`, binding `iterVars`, with optional reduction init. Groups of
 * iterators can be fused (sparse_fuse schedule); fuseGroups records,
 * for each emitted loop, how many consecutive axes it covers (all 1s
 * when unfused).
 */
class SparseIterationNode : public StmtNode
{
  public:
    SparseIterationNode(std::string name, std::vector<Axis> axes,
                        std::vector<Var> iter_vars,
                        std::vector<IterKind> iter_kinds, Stmt body)
        : StmtNode(StmtKind::kSparseIteration), name(std::move(name)),
          axes(std::move(axes)), iterVars(std::move(iter_vars)),
          iterKinds(std::move(iter_kinds)), body(std::move(body))
    {
        fuseGroups.assign(this->axes.size(), 1);
    }

    std::string name;
    std::vector<Axis> axes;
    std::vector<Var> iterVars;
    std::vector<IterKind> iterKinds;
    Stmt body;
    Stmt init;
    /**
     * Loop fusion structure: fuseGroups[g] = number of consecutive
     * axes fused into emitted loop g; sums to axes.size().
     */
    std::vector<int> fuseGroups;
};

using SparseIteration = std::shared_ptr<const SparseIterationNode>;

// ---------------------------------------------------------------------
// Factory helpers
// ---------------------------------------------------------------------

Stmt bufferStore(Buffer buffer, std::vector<Expr> indices, Expr value);
Stmt seq(std::vector<Stmt> stmts);
Stmt forLoop(Var loop_var, Expr min_value, Expr extent, Stmt body,
             ForKind kind = ForKind::kSerial, std::string thread_tag = "");
Stmt block(std::string name, Stmt body, Stmt init = nullptr);
Stmt ifThenElse(Expr cond, Stmt then_body, Stmt else_body = nullptr);
Stmt letStmt(Var let_var, Expr value, Stmt body);
Stmt allocate(Buffer buffer, Stmt body);
Stmt evaluate(Expr value);

/** Parse iterator kinds from the paper's "SRS"-style string. */
std::vector<IterKind> parseIterKinds(const std::string &pattern);

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_STMT_H_
