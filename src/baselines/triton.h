/**
 * @file
 * Triton block-sparse stand-ins (paper §4.3): BSR SpMM/SDDMM with
 * Tensor Cores, the baseline of Figures 16 and 17.
 */

#ifndef SPARSETIR_BASELINES_TRITON_H_
#define SPARSETIR_BASELINES_TRITON_H_

#include <memory>

#include "baselines/models.h"

namespace sparsetir {
namespace baselines {

std::unique_ptr<gpusim::Kernel> tritonBlockSpmm(const format::Bsr &a,
                                                int64_t feat);

std::unique_ptr<gpusim::Kernel> tritonBlockSddmm(const format::Bsr &a,
                                                 int64_t feat);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_TRITON_H_
