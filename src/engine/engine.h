/**
 * @file
 * Engine: the serving entry point of the SparseTIR runtime.
 *
 * A session owns a CompileCache, a ThreadPool and a ParallelExecutor
 * and exposes one-call operator dispatch (spmmCsr / spmmHyb / sddmm /
 * rgcn / spmmBsr / spmmSrbcrs). Each dispatch fingerprints the
 * request (operator, sparsity structure, schedule parameters, feature
 * dims, artifact version), reuses the compiled kernel artifact on a
 * hit — skipping Stage I -> III lowering, bytecode compilation and
 * re-bucketing entirely — binds the request's values (via the
 * formats' provenance maps) and executes with deterministic
 * parallelism (see executor.h). Cached artifacts carry
 * engine::CompiledKernel units: Stage III IR plus the
 * register-bytecode program the VM executes on warm dispatches, plus
 * the spilled block-extent expression that sizes the launch grid
 * without an interpreter probe.
 *
 * Batched dispatch (`spmm*Batch`) is the multi-tenant serving shape:
 * N in-flight requests against one sparsity structure resolve ONE
 * cached artifact, get private per-request bindings, and are striped
 * across the pool as (request x grid-chunk / kernel) units — each
 * request's output bitwise identical to its own serial dispatch.
 *
 * Thread-safety contract: an Engine may be shared by any number of
 * request threads. Artifacts are immutable after construction; every
 * dispatch builds a private BindingSet; cache and stats are
 * internally locked. The executor only ever parallelizes work whose
 * shared writes it has privatized, so concurrent dispatches never
 * race even when they read the same cached structure arrays.
 */

#ifndef SPARSETIR_ENGINE_ENGINE_H_
#define SPARSETIR_ENGINE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "dfg/op_graph.h"
#include "engine/compile_cache.h"
#include "engine/executor.h"
#include "engine/fingerprint.h"
#include "engine/thread_pool.h"
#include "format/bsr.h"
#include "format/csr.h"
#include "format/relational.h"
#include "format/srbcrs.h"
#include "observe/metrics.h"

namespace sparsetir {
namespace engine {

/** Session construction parameters. */
struct EngineOptions
{
    /** Worker threads; 0 picks the hardware concurrency. */
    int numThreads = 0;
    /** Compile-cache entries kept (LRU beyond this). */
    size_t cacheCapacity = 64;
    /** Master switch for parallel execution. */
    bool parallel = true;
    /** Grid-splitting granularity floor (see ExecOptions). */
    int64_t minBlocksPerChunk = 8;
    /**
     * Host backend for kernel execution. Bytecode is the serving
     * path (artifacts cache compiled programs; warm dispatches run
     * the VM); the interpreter is the bitwise-identical reference
     * oracle used by differential tests and benchmarks.
     */
    runtime::Backend backend = runtime::Backend::kBytecode;
    /**
     * Native-tier promotion threshold (meaningful when `backend` is
     * kNative, which SPARSETIR_NATIVE=1 selects by default): an
     * artifact is promoted — its kernels emitted as C, compiled
     * out-of-process and atomically swapped in — after its
     * warm-dispatch count exceeds this many resolves. Until then (and
     * whenever emission or the C compiler bails) kNative dispatches
     * serve on bytecode, so the request path never waits on `cc`.
     * 0 promotes synchronously inside the first resolve — the
     * deterministic-test configuration; negative disables promotion
     * entirely.
     */
    int nativePromoteAfter = 3;
    /**
     * Launch multi-kernel dispatches (hyb buckets, RGCN units) and
     * batched requests as ONE fused task graph instead of the
     * barriered per-bucket schedule. Results are bitwise identical
     * either way (the fused fold replays the serial addition order
     * per element; see executor.h); the barriered path stays
     * available as the differential oracle.
     */
    bool fusedDispatch = true;
    /**
     * Enable span tracing (observe::TraceRecorder::global()) for the
     * process when this engine is constructed. The SPARSETIR_TRACE
     * environment variable ("1"/"true") enables it as well;
     * constructing an engine with trace=false never turns an
     * already-enabled recorder off. Disabled (the default), every
     * instrumentation point costs one relaxed atomic load.
     */
    bool trace = false;
    /**
     * Run the static artifact verifier (verify/verifier.h) on every
     * kernel a miss-path builder compiles, BEFORE the artifact enters
     * the compile cache: affine bounds on every buffer access,
     * write-set soundness against the declared AccumOutput spans, and
     * parallel-race freedom of the blockIdx axis — all proven against
     * the request's concrete structure arrays. The verdict is cached
     * with the artifact, so warm dispatches never pay for it (warm
     * latency unchanged); a failed proof makes the dispatch throw
     * UserError carrying the verifier's diagnostics. Defaults on in
     * Debug builds and whenever SPARSETIR_VERIFY=1 — the CI
     * configuration (see core::verifyEnabledByDefault).
     */
    bool verifyArtifacts = core::verifyEnabledByDefault();
};

/** Outcome of one dispatch. */
struct DispatchInfo
{
    bool cacheHit = false;
    /** Time spent resolving the artifact (compile on miss). */
    double compileMs = 0.0;
    /** Time spent gathering and binding the request's values. */
    double bindMs = 0.0;
    /**
     * Time spent executing kernels on the session's backend (the
     * bytecode VM by default; the interpreter when
     * EngineOptions::backend selects the reference oracle).
     */
    double kernelMs = 0.0;
    /** bindMs + kernelMs. */
    double execMs = 0.0;
    int numKernels = 0;

    /** The serving-path overhead the compile cache eliminates. */
    double dispatchOverheadMs() const { return compileMs + bindMs; }
};

/** Outcome of one batched dispatch (N requests, one artifact). */
struct BatchDispatchInfo
{
    /** Whether the single artifact resolve was served from cache. */
    bool cacheHit = false;
    /** Artifact resolve time — at most ONE compile per batch. */
    double compileMs = 0.0;
    /** Building the shared base + per-request binding views. */
    double bindMs = 0.0;
    /** Executing the striped (request x unit) work on the pool. */
    double kernelMs = 0.0;
    /** bindMs + kernelMs. */
    double execMs = 0.0;
    int numRequests = 0;
    /** Kernels executed per request. */
    int numKernels = 0;

    double dispatchOverheadMs() const { return compileMs + bindMs; }
};

/**
 * Session-cumulative counters — a view assembled by Engine::stats()
 * from the engine's metrics registry (`engine.requests`,
 * `engine.cache_hits`, `engine.cache_misses`, and the sums of the
 * `engine.compile_ms` / `engine.exec_ms` histograms).
 */
struct EngineStats
{
    uint64_t requests = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    double totalCompileMs = 0.0;
    double totalExecMs = 0.0;
};

/**
 * Native-tier counters — a view over `native.promotions` /
 * `native.compiles` / `native.disk_hits` / `native.fallbacks` in the
 * session registry (Engine::nativeStats()).
 */
struct NativeStats
{
    /** Artifacts the promotion policy processed. */
    uint64_t promotions = 0;
    /** Kernels built by invoking the C compiler. */
    uint64_t compiles = 0;
    /** Kernels served from a persisted .so (zero compiler runs). */
    uint64_t diskHits = 0;
    /** Kernels that stayed on bytecode (emitter/cc bailed). */
    uint64_t fallbacks = 0;
};

/** Format/schedule selection for hyb SpMM dispatch. */
struct HybConfig
{
    /** Column partitions (paper's c). */
    int partitions = 1;
    /** Bucket cap log2 (paper's k); -1 = per-structure heuristic. */
    int bucketCapLog2 = -1;
    int threadX = 32;
};

/** Format/schedule selection for RGCN dispatch. */
struct RgcnConfig
{
    int bucketCapLog2 = 5;
    bool tensorCores = false;
};

/** Mode selection for whole-graph dispatch. */
struct GraphDispatchOptions
{
    /**
     * Fuse the graph into one kernel when dfg::fusible allows; clear
     * to force the per-node chain (the differential oracle). Both
     * modes are cached under distinct keys and produce bitwise
     * identical outputs.
     */
    bool fuse = true;
};

/** Schedule selection for BSR SpMM dispatch. */
struct BsrConfig
{
    /**
     * Annotate the MMA for the Tensor-Core pipe (simulator/codegen
     * path); host execution is identical either way.
     */
    bool tensorCores = false;
};

/**
 * One in-flight request of a batched SpMM dispatch: its own feature
 * matrix and output. All requests of a batch share the sparse
 * operand (structure AND values) — the one-artifact-many-features
 * serving shape. Outputs must be distinct arrays.
 */
struct SpmmRequest
{
    /** Dense feature matrix (cols x feat, row-major). */
    runtime::NDArray *b = nullptr;
    /** Output (rows x feat, row-major; padded rows for block formats). */
    runtime::NDArray *c = nullptr;
};

/**
 * A compiled-and-bound hyb SpMM ready for execution or simulation.
 * `bindings` holds structure and value arrays; callers bind "B_data"
 * and "C_data" externally before executing or building sim kernels.
 */
struct PreparedSpmmHyb
{
    std::vector<std::shared_ptr<core::BoundKernel>> kernels;
    std::shared_ptr<core::BindingSet> bindings;
    /** Resolved bucket cap (k) of the cached decomposition. */
    int bucketCapLog2 = 0;
    bool cacheHit = false;
    /**
     * Keeps the cached artifact (whose structure arrays `bindings`
     * references) alive past LRU eviction.
     */
    std::shared_ptr<Artifact> artifact;
};

class Engine
{
  public:
    explicit Engine(EngineOptions options = EngineOptions());

    /** Joins any in-flight background native promotions: their tasks
     *  capture `this` and record into the session registry, so they
     *  must finish before members start destructing. */
    ~Engine();

    /** C = A @ B over the single-format CSR kernel. */
    DispatchInfo spmmCsr(const format::Csr &a, int64_t feat,
                         runtime::NDArray *b, runtime::NDArray *c,
                         const core::SpmmSchedule &schedule =
                             core::SpmmSchedule());

    /**
     * C = A @ B through the composable hyb(c, k) decomposition. The
     * bucket kernels accumulate partial sums, so C is zeroed by the
     * dispatch before execution (overwrite semantics, like spmmCsr).
     */
    DispatchInfo spmmHyb(const format::Csr &a, int64_t feat,
                         runtime::NDArray *b, runtime::NDArray *c,
                         const HybConfig &config = HybConfig());

    /** out = A ⊙ (X @ Y) with the fused two-stage reduction. */
    DispatchInfo sddmm(const format::Csr &a, int64_t feat,
                       runtime::NDArray *x, runtime::NDArray *y,
                       runtime::NDArray *out,
                       const core::SddmmSchedule &schedule =
                           core::SddmmSchedule());

    /**
     * Fused RGCN layer: Y += scatter(A_r @ X @ W) over every
     * relation's hyb buckets, one kernel per (relation, bucket), all
     * dispatched concurrently. W is the feat x feat weight shared
     * across relations (as in model/rgcn). Accumulation semantics:
     * zero-initialize Y for a pure layer output.
     */
    DispatchInfo rgcn(const format::RelationalCsr &graph, int64_t feat,
                      runtime::NDArray *x, runtime::NDArray *w,
                      runtime::NDArray *y,
                      const RgcnConfig &config = RgcnConfig());

    /**
     * Rectangular RGCN layer: X is cols x featIn, W featIn x featOut,
     * Y rows x featOut. featIn and featOut are keyed separately in
     * the compile cache — (16, 32) and (32, 16) are distinct
     * artifacts (the aliasing a single shared feat field permitted).
     */
    DispatchInfo rgcn(const format::RelationalCsr &graph,
                      int64_t featIn, int64_t featOut,
                      runtime::NDArray *x, runtime::NDArray *w,
                      runtime::NDArray *y,
                      const RgcnConfig &config = RgcnConfig());

    /**
     * Execute a whole dfg::OpGraph as ONE dispatch. The graph-level
     * artifact (keyed by the graph's node/edge topology fingerprint,
     * OpKind::kGraph) caches either a single fused kernel — interior
     * tensors demoted to per-row locals, never materialized — or the
     * per-node chain with a scratch-leasing plan for the
     * intermediates. `io` maps every named value (graph inputs and
     * marked outputs) to its array; element counts are validated
     * against the graph's shapes. DispatchInfo::numKernels tells the
     * two modes apart (1 fused, N chain).
     */
    DispatchInfo dispatchGraph(const dfg::OpGraph &graph,
                               const std::map<std::string,
                                              runtime::NDArray *> &io,
                               const GraphDispatchOptions &options =
                                   GraphDispatchOptions());

    /**
     * C = A @ B over the tiled BSR kernel (structured-pruned
     * weights). B is (blockCols*blockSize) x feat and C is
     * (blockRows*blockSize) x feat: the block grid's padded shape.
     * Overwrite semantics (the kernel's init zeroes C).
     */
    DispatchInfo spmmBsr(const format::Bsr &a, int64_t feat,
                         runtime::NDArray *b, runtime::NDArray *c,
                         const BsrConfig &config = BsrConfig());

    /**
     * C = A @ B over the SR-BCRS(t, g) stripe kernel
     * (unstructured-pruned weights). C is (stripes*t) x feat.
     * Overwrite semantics.
     */
    DispatchInfo spmmSrbcrs(const format::SrBcrs &a, int64_t feat,
                            runtime::NDArray *b, runtime::NDArray *c);

    // -----------------------------------------------------------------
    // Batched dispatch: one artifact, many feature matrices in flight.
    // Each batch performs at most ONE compile (cache resolve), builds
    // a private binding view per request, and stripes the cross
    // product of (requests x grid chunks / kernels) across the pool.
    // Every request's output is bitwise identical to dispatching it
    // alone through the corresponding serial entry point.
    // -----------------------------------------------------------------

    BatchDispatchInfo
    spmmCsrBatch(const format::Csr &a, int64_t feat,
                 const std::vector<SpmmRequest> &requests,
                 const core::SpmmSchedule &schedule =
                     core::SpmmSchedule());

    BatchDispatchInfo
    spmmHybBatch(const format::Csr &a, int64_t feat,
                 const std::vector<SpmmRequest> &requests,
                 const HybConfig &config = HybConfig());

    /**
     * Batched dispatch over an already-prepared hyb SpMM: skips even
     * the cache lookup and value gather — the handle pins the
     * artifact and the gathered bucket values. Requests' outputs are
     * zeroed by the dispatch (overwrite contract, like spmmHyb).
     */
    BatchDispatchInfo
    spmmHybBatch(const PreparedSpmmHyb &prepared,
                 const std::vector<SpmmRequest> &requests);

    BatchDispatchInfo
    spmmBsrBatch(const format::Bsr &a, int64_t feat,
                 const std::vector<SpmmRequest> &requests,
                 const BsrConfig &config = BsrConfig());

    BatchDispatchInfo
    spmmSrbcrsBatch(const format::SrBcrs &a, int64_t feat,
                    const std::vector<SpmmRequest> &requests);

    /**
     * Resolve (compile or fetch) a hyb SpMM and return bound kernels
     * for external execution or simulation — the autotuner's path.
     */
    PreparedSpmmHyb prepareSpmmHyb(const format::Csr &a, int64_t feat,
                                   const HybConfig &config = HybConfig());

    EngineStats stats() const;
    CacheStats cacheStats() const { return cache_.stats(); }
    /** Native-tier promotion/compile counters (see NativeStats). */
    NativeStats nativeStats() const;
    /**
     * Everything this session's registry holds — request/hit/miss
     * counters, per-op-kind warm and cold dispatch latency
     * histograms (`engine.warm_dispatch_ms.<op>` /
     * `engine.cold_dispatch_ms.<op>`, per-request latency for
     * batches), cache counters, this engine's launch probes
     * (`runtime.launch_probes`) — plus scratch-pool gauges published
     * at snapshot time. p50/p95/p99 come interpolated from the
     * histograms' log-spaced buckets (see observe/metrics.h).
     */
    observe::MetricsSnapshot metricsSnapshot() const;
    /** The registry backing stats()/cacheStats()/metricsSnapshot(). */
    observe::MetricsRegistry *metrics() const { return metrics_.get(); }
    /**
     * Privatization scratch accounting of the session's executor:
     * peakLeasedBytes is the dispatch-concurrency high-water mark —
     * with span-restricted kernels it scales with the touched
     * write-set extents, not units x output size.
     */
    ScratchStats scratchStats() const { return executor_.scratchStats(); }
    /** Restart the scratch high-water mark (benchmark sections). */
    void resetScratchPeak() { executor_.resetScratchPeak(); }
    const std::shared_ptr<ThreadPool> &pool() const { return pool_; }
    int numThreads() const { return pool_->size(); }

  private:
    std::shared_ptr<Artifact>
    resolve(const CacheKey &key,
            const std::function<std::shared_ptr<Artifact>()> &builder,
            DispatchInfo *info);

    void finishDispatch(const DispatchInfo &info, OpKind op);

    /**
     * Account a batch: numRequests logical requests, at most one of
     * which paid the (single) compile; the rest count as hits on the
     * artifact it produced. The per-op latency histogram records the
     * batch's per-request exec latency (execMs / numRequests), once
     * per request.
     */
    void finishBatch(const BatchDispatchInfo &info, OpKind op);

    /** Warm/cold dispatch-latency histogram of one op kind. */
    observe::LatencyHistogram *opLatency(OpKind op, bool warm);

    ExecOptions execOptions() const;

    /**
     * Execute a multi-kernel dispatch (hyb buckets, RGCN units) on
     * the session's configured schedule: the fused task graph when
     * EngineOptions::fusedDispatch is set, the barriered
     * runKernels/runKernelsBatch oracle otherwise. Bitwise-identical
     * results either way.
     */
    void runMultiKernel(
        const std::vector<const CompiledKernel *> &kernels,
        const runtime::Bindings &bindings);
    void runMultiKernelBatch(
        const std::vector<const CompiledKernel *> &kernels,
        const std::vector<runtime::Bindings> &requests);

    /** Whether artifacts should carry compiled bytecode programs
     *  (the native tier serves on bytecode until promoted). */
    bool
    usesBytecode() const
    {
        return options_.backend != runtime::Backend::kInterpreter;
    }

    /**
     * Promotion policy hook, called on every resolve when the session
     * backend is kNative: counts warm resolves of `key` and, when the
     * count crosses EngineOptions::nativePromoteAfter, promotes the
     * artifact — inline for threshold 0, as a background pool task
     * otherwise (the artifact is kept alive by the captured
     * shared_ptr; dispatches keep serving bytecode meanwhile).
     */
    void maybePromote(const CacheKey &key,
                      const std::shared_ptr<Artifact> &artifact);

    /**
     * Compile every kernel of `artifact` to the native tier and swap
     * each result into its kernel's NativeBox. Emitter/compiler
     * bails (UserError) count as fallbacks and leave the kernel on
     * bytecode permanently — transparent degradation, never an error
     * on the request path.
     */
    void promoteNow(const CacheKey &key,
                    const std::shared_ptr<Artifact> &artifact);

    EngineOptions options_;
    std::shared_ptr<ThreadPool> pool_;
    ParallelExecutor executor_;
    /** Session registry; declared before cache_, which registers its
     *  instruments in it. */
    std::unique_ptr<observe::MetricsRegistry> metrics_;
    CompileCache cache_;

    // Hot-path instruments, resolved once at construction (registry
    // pointers are stable) so dispatch accounting is lock-free.
    observe::Counter *requests_;
    observe::Counter *cacheHits_;
    observe::Counter *cacheMisses_;
    observe::LatencyHistogram *compileMs_;
    observe::LatencyHistogram *execMs_;
    /** This engine's (non-aliased) launch probes; fed through a
     *  runtime::ProbeCounterScope around artifact builds. */
    observe::Counter *launchProbes_;
    /** Indexed by OpKind; [0] = warm, [1] = cold. */
    observe::LatencyHistogram *opLatency_[2][8] = {};

    // Native-tier promotion state and instruments.
    struct PromoState
    {
        int warmHits = 0;
        bool launched = false;
    };
    std::mutex promoMu_;
    std::unordered_map<CacheKey, PromoState, CacheKeyHash> promo_;
    /** Futures of background promotion tasks, joined by ~Engine. */
    std::vector<std::future<void>> promoFutures_;
    observe::Counter *nativePromotions_;
    observe::Counter *nativeCompiles_;
    observe::Counter *nativeDiskHits_;
    observe::Counter *nativeFallbacks_;
    observe::LatencyHistogram *nativeCompileMs_;
};

} // namespace engine
} // namespace sparsetir

#endif // SPARSETIR_ENGINE_ENGINE_H_
