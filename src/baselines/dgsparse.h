/**
 * @file
 * dgSPARSE stand-ins: GE-SpMM / DA-SpMM SpMM and the PRedS SDDMM
 * (CSR- and COO-parallel variants, paper Figure 14).
 */

#ifndef SPARSETIR_BASELINES_DGSPARSE_H_
#define SPARSETIR_BASELINES_DGSPARSE_H_

#include <memory>

#include "baselines/models.h"

namespace sparsetir {
namespace baselines {

/** GE-SpMM: coalesced row caching, warp per row group. */
std::unique_ptr<gpusim::Kernel> dgsparseSpmm(const format::Csr &a,
                                             int64_t feat);

/** PRedS SDDMM, CSR (row-parallel) dispatch. */
std::unique_ptr<gpusim::Kernel> dgsparseSddmmCsr(const format::Csr &a,
                                                 int64_t feat);

/** PRedS SDDMM, COO (non-zero-parallel) dispatch. */
std::unique_ptr<gpusim::Kernel> dgsparseSddmmCoo(const format::Csr &a,
                                                 int64_t feat);

} // namespace baselines
} // namespace sparsetir

#endif // SPARSETIR_BASELINES_DGSPARSE_H_
