#include "model/graphsage.h"

#include "baselines/cublas.h"
#include "baselines/frameworks.h"
#include "baselines/vendor_constants.h"
#include "core/pipeline.h"
#include "observe/trace.h"

namespace sparsetir {
namespace model {

using namespace baselines;

GraphSageResult
graphSageEpoch(const format::Csr &graph, const GraphSageConfig &config,
               gpusim::Device &device, int hyb_partitions)
{
    GraphSageResult result;
    gpusim::SimOptions framework_opts;
    framework_opts.efficiency = kFrameworkEfficiency;
    gpusim::SimOptions cublas_opts;
    cublas_opts.efficiency = kCublasEfficiency;
    gpusim::SimOptions ours_opts;
    ours_opts.efficiency = kSparseTirEfficiency;

    format::Csr transposed = format::csrTranspose(graph);

    // SparseTIR hyb kernels (forward adjacency + transposed for the
    // backward pass), compiled once and reused across layers.
    auto fwd_shared = std::make_shared<core::BindingSet>();
    core::HybSpmm fwd = core::compileSpmmHyb(
        graph, config.featHidden, hyb_partitions, -1, fwd_shared);
    auto bwd_shared = std::make_shared<core::BindingSet>();
    core::HybSpmm bwd = core::compileSpmmHyb(
        transposed, config.featHidden, hyb_partitions, -1, bwd_shared);

    // External feature/output arrays for the simulator bindings.
    runtime::NDArray b_fwd({graph.cols * config.featHidden},
                           ir::DataType::float32());
    runtime::NDArray c_fwd({graph.rows * config.featHidden},
                           ir::DataType::float32());
    fwd_shared->external("B_data", &b_fwd);
    fwd_shared->external("C_data", &c_fwd);
    bwd_shared->external("B_data", &c_fwd);
    bwd_shared->external("C_data", &b_fwd);

    for (int layer = 0; layer < config.numLayers; ++layer) {
        int64_t fin = layer == 0 ? config.featIn : config.featHidden;
        // Dense transforms (self + neighbour), identical in both
        // stacks: cuBLAS.
        auto gemm = cublasGemm(graph.rows, config.featHidden, fin,
                               false);
        double gemm_ms =
            2.0 * device.launch(*gemm, cublas_opts).timeMs;

        // --- DGL: cuSPARSE-style SpMM fwd + transposed bwd. ---
        auto dgl_fwd = dglSpmm(graph, config.featHidden);
        auto dgl_bwd = dglSpmm(transposed, config.featHidden);
        double dgl_ms = device.launch(*dgl_fwd, framework_opts).timeMs +
                        device.launch(*dgl_bwd, framework_opts).timeMs;
        // Backward GEMMs (dW, dX).
        result.dglMs += dgl_ms + 2.0 * gemm_ms;

        // --- PyTorch + SparseTIR: tuned hyb kernels. ---
        double st_ms = 0.0;
        std::vector<const gpusim::Kernel *> fwd_kernels;
        for (auto &kernel : fwd.kernels) {
            fwd_kernels.push_back(&kernel->simKernel());
        }
        st_ms += device.launchFused(fwd_kernels, ours_opts).timeMs;
        std::vector<const gpusim::Kernel *> bwd_kernels;
        for (auto &kernel : bwd.kernels) {
            bwd_kernels.push_back(&kernel->simKernel());
        }
        st_ms += device.launchFused(bwd_kernels, ours_opts).timeMs;
        result.sparsetirMs += st_ms + 2.0 * gemm_ms;
    }
    return result;
}

dfg::OpGraph
buildGraphSageLayerGraph(const dfg::PatternRef &adj, int64_t feat_in,
                         int64_t feat_out)
{
    SPARSETIR_TRACE_SCOPE("dfg", "dfg.graph_build");
    dfg::OpGraph graph;
    int x = graph.denseInput("x", adj->cols, feat_in);
    int w = graph.denseInput("w", feat_in, feat_out);
    int h = graph.aggregate(adj, x, /*mean=*/true);
    int out = graph.update(h, w);
    graph.markOutput(out, "out");
    return graph;
}

engine::DispatchInfo
graphSageLayer(engine::Engine &engine, const dfg::PatternRef &adj,
               int64_t feat_in, int64_t feat_out, runtime::NDArray *x,
               runtime::NDArray *w, runtime::NDArray *out, bool fuse)
{
    dfg::OpGraph graph =
        buildGraphSageLayerGraph(adj, feat_in, feat_out);
    engine::GraphDispatchOptions options;
    options.fuse = fuse;
    return engine.dispatchGraph(
        graph, {{"x", x}, {"w", w}, {"out", out}}, options);
}

} // namespace model
} // namespace sparsetir
