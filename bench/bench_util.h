/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: table
 * printing, geometric means and the paper-reported values that each
 * bench prints next to the reproduced numbers.
 */

#ifndef SPARSETIR_BENCH_BENCH_UTIL_H_
#define SPARSETIR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "observe/metrics.h"

namespace benchutil {

/**
 * THE timing loop: run `fn` `rounds` times, return the mean wall
 * milliseconds. Each round's latency is also recorded into `hist`
 * when non-null — the same observe::LatencyHistogram class the
 * engine's per-op dispatch histograms use, so bench percentiles and
 * engine percentiles come from one code path.
 */
inline double
timedRoundsMs(int rounds, const std::function<void()> &fn,
              sparsetir::observe::LatencyHistogram *hist = nullptr)
{
    double total = 0.0;
    for (int round = 0; round < rounds; ++round) {
        auto start = std::chrono::steady_clock::now();
        fn();
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        if (hist != nullptr) {
            hist->record(ms);
        }
        total += ms;
    }
    return rounds > 0 ? total / rounds : 0.0;
}

inline double
geomean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (double v : values) {
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** True when FAST=1 is set: shrink sweeps for smoke runs. */
inline bool
fastMode()
{
    const char *fast = std::getenv("FAST");
    return fast != nullptr && std::string(fast) == "1";
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n==================================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("====================================================="
                "===================\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &values,
         const char *fmt = "%8.2f")
{
    std::printf("%-22s", name.c_str());
    for (double v : values) {
        std::printf(fmt, v);
    }
    std::printf("\n");
}

inline void
printColumns(const std::vector<std::string> &columns)
{
    std::printf("%-22s", "");
    for (const auto &c : columns) {
        std::printf("%8s", c.c_str());
    }
    std::printf("\n");
}

} // namespace benchutil

#endif // SPARSETIR_BENCH_BENCH_UTIL_H_
