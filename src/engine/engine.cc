#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_set>
#include <utility>

#include "dfg/lower.h"
#include "format/hyb.h"
#include "model/rgcn.h"
#include "observe/trace.h"
#include "runtime/interpreter.h"
#include "runtime/native/native_compiler.h"
#include "support/logging.h"

namespace sparsetir {
namespace engine {

using core::BindingSet;
using format::Csr;
using runtime::NDArray;

namespace {

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Identification tag of one kernel's persisted native artifact: the
 * full cache key plus the kernel's index inside the artifact and the
 * artifact/ABI versions. Baked into the .so's meta string, so a
 * restarted process can validate an on-disk file against exactly the
 * key it would build for.
 */
std::string
nativeKeyTag(const CacheKey &key, int kernel_index)
{
    std::string tag = "v" + std::to_string(key.version);
    tag += ".op" + std::to_string(static_cast<int>(key.op));
    tag += ".s" + std::to_string(key.structure);
    tag += ".h" + std::to_string(key.schedule);
    tag += ".fi" + std::to_string(key.featIn);
    tag += ".fo" + std::to_string(key.featOut);
    tag += ".r" + std::to_string(key.rows);
    tag += ".z" + std::to_string(key.nnz);
    tag += ".b" + std::to_string(key.blockSize);
    tag += ".t" + std::to_string(key.tileHeight);
    tag += ".g" + std::to_string(key.groupSize);
    tag += ".k" + std::to_string(kernel_index);
    return tag;
}

/**
 * True when a bucket stores several ELL rows for one original row
 * (long rows split by the hyb cap): its kernel then writes one output
 * element more than once and must run serially at its list position
 * to stay bitwise equal to serial execution (see executor.h).
 */
bool
hasDuplicateRows(const std::vector<int32_t> &row_indices)
{
    std::unordered_set<int32_t> seen;
    seen.reserve(row_indices.size());
    for (int32_t r : row_indices) {
        if (!seen.insert(r).second) {
            return true;
        }
    }
    return false;
}

/** Re-bind stored values through a provenance map (padding -> 0). */
std::vector<float>
gatherValues(const std::vector<int32_t> &source_pos,
             const std::vector<float> &values)
{
    std::vector<float> out(source_pos.size(), 0.0f);
    for (size_t i = 0; i < source_pos.size(); ++i) {
        int32_t p = source_pos[i];
        if (p >= 0) {
            ICHECK_LT(static_cast<size_t>(p), values.size())
                << "provenance map does not match the request's "
                   "values array; compile-cache key mismatch";
            out[i] = values[p];
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Artifacts
//
// Since artifact version 2 (see kArtifactVersion) every kernel is
// cached as an engine::CompiledKernel: Stage III IR + compiled
// bytecode program + write-set analysis (+ touched-row spans for
// scatter kernels). Warm dispatches execute the program directly.
// ---------------------------------------------------------------------

/**
 * Restrict a kernel's accumulated output `name` to the rows its
 * scatter indices can touch: privatization then leases scratch sized
 * to the touched extent and zeroes/folds only it, through the
 * offset-translating window (see executor.h). A bucket with no rows
 * yields an explicitly empty write set — the unit leases and folds
 * nothing — never the whole-array fallback.
 */
void
restrictAccumSpans(CompiledKernel *kernel, const std::string &name,
                   const std::vector<int32_t> &row_indices,
                   int64_t row_width)
{
    for (AccumOutput &out : kernel->accums) {
        if (out.name == name) {
            out.setSpans(touchedRowSpans(row_indices, row_width));
        }
    }
}

/**
 * Copy a compiled kernel's write-set analysis (after
 * restrictAccumSpans and the exclusive marking) into a verifier
 * context. `rows_buffer`/`rows`/`row_width` describe the scatter row
 * list of span-restricted outputs; pass ""/null/0 for kernels with no
 * scatter outputs.
 */
void
declareAccumSpec(verify::VerifyContext *ctx,
                 const CompiledKernel &kernel,
                 const std::string &rows_buffer,
                 const std::vector<int32_t> *rows, int64_t row_width)
{
    ctx->hasAccumSpec = true;
    ctx->kernelExclusive = kernel.exclusive;
    for (const AccumOutput &out : kernel.accums) {
        verify::AccumWriteSet set;
        set.buffer = out.name;
        set.wholeArray = out.wholeArray;
        set.spans = out.window.spans;
        set.rowsBuffer = rows_buffer;
        set.rows = rows;
        set.rowWidth = row_width;
        ctx->accums.push_back(std::move(set));
    }
}

/**
 * Prove one kernel's bounds / write-set / race obligations and fold
 * the outcome into the artifact's cached report. Failures do not
 * throw here: the verdict (with its diagnostics) is cached on the
 * artifact, and Engine::resolve raises it as a UserError on every
 * dispatch that touches the bad artifact — including warm hits, at
 * zero re-proving cost.
 */
void
verifyKernelInto(Artifact *artifact, const CompiledKernel &kernel,
                 const verify::VerifyContext &ctx,
                 const std::string &what)
{
    SPARSETIR_TRACE_SCOPE("verify", "verify.artifact");
    auto start = std::chrono::steady_clock::now();
    verify::VerifyResult result = verify::verifyFunc(kernel.func, ctx);
    artifact->verify.attempted = true;
    artifact->verify.kernels += 1;
    artifact->verify.verifyMs += msSince(start);
    if (!result.ok) {
        artifact->verify.ok = false;
        for (verify::Diagnostic &diag : result.diagnostics) {
            diag.message = "kernel '" + what + "': " + diag.message;
            artifact->verify.diagnostics.push_back(std::move(diag));
        }
    }
}

/** Concrete structure facts shared by the CSR-backed kernels. */
verify::VerifyContext
csrVerifyContext(const Csr &a, int64_t feat)
{
    verify::VerifyContext ctx;
    ctx.scalar("m", a.rows);
    ctx.scalar("n", a.cols);
    ctx.scalar("nnz", a.nnz());
    ctx.scalar("feat_size", feat);
    ctx.int32Array("J_indptr", a.indptr);
    ctx.int32Array("J_indices", a.indices);
    return ctx;
}

struct SpmmCsrArtifact : Artifact
{
    CompiledKernel kernel;
    NDArray indptr;
    NDArray indices;

    std::vector<CompiledKernel *>
    nativeKernels() override
    {
        return {&kernel};
    }
};

struct SddmmArtifact : Artifact
{
    CompiledKernel kernel;
    NDArray indptr;
    NDArray indices;

    std::vector<CompiledKernel *>
    nativeKernels() override
    {
        return {&kernel};
    }
};

struct BsrArtifact : Artifact
{
    CompiledKernel kernel;
    NDArray indptr;
    NDArray indices;

    std::vector<CompiledKernel *>
    nativeKernels() override
    {
        return {&kernel};
    }
};

struct SrbcrsArtifact : Artifact
{
    CompiledKernel kernel;
    NDArray groupIndptr;
    NDArray tileCols;

    std::vector<CompiledKernel *>
    nativeKernels() override
    {
        return {&kernel};
    }
};

/** One non-empty (partition, bucket) of a cached hyb decomposition. */
struct HybBucketData
{
    std::string suffix;
    CompiledKernel kernel;
    NDArray rowIndices;
    NDArray colIndices;
    /** Slot -> position in the source CSR values (-1: padding). */
    std::vector<int32_t> gather;
};

struct SpmmHybArtifact : Artifact
{
    int bucketCapLog2 = 0;
    NDArray indptr;
    NDArray indices;
    std::vector<HybBucketData> buckets;

    std::vector<CompiledKernel *>
    nativeKernels() override
    {
        std::vector<CompiledKernel *> kernels;
        for (HybBucketData &bucket : buckets) {
            kernels.push_back(&bucket.kernel);
        }
        return kernels;
    }
};

/** One (relation, bucket) RGMS kernel of a cached RGCN layer. */
struct RgcnUnit
{
    int relation = 0;
    std::string suffix;
    CompiledKernel kernel;
    NDArray rowIndices;
    NDArray colIndices;
    std::vector<int32_t> gather;
};

struct RgcnArtifact : Artifact
{
    std::vector<RgcnUnit> units;

    std::vector<CompiledKernel *>
    nativeKernels() override
    {
        std::vector<CompiledKernel *> kernels;
        for (RgcnUnit &unit : units) {
            kernels.push_back(&unit.kernel);
        }
        return kernels;
    }
};

/** A chain-mode intermediate the dispatch leases scratch for. */
struct GraphTemp
{
    std::string name;
    int64_t numel = 0;
};

/**
 * A whole OpGraph's compiled program: one fused kernel (interior
 * tensors live in per-row locals) or the per-node chain plus its
 * intermediate-materialization plan. Structure arrays are keyed by
 * the lowering's binding names ("J<p>_indptr"/"J<p>_indices").
 */
struct GraphArtifact : Artifact
{
    bool fused = false;
    /** Why fusion bailed to the chain; empty when fused. */
    std::string modeReason;
    std::vector<CompiledKernel> kernels;
    std::map<std::string, NDArray> structures;
    std::vector<GraphTemp> temps;
    /** Bytes of scratch a chain dispatch leases (0 when fused). */
    int64_t tempBytes = 0;

    std::vector<CompiledKernel *>
    nativeKernels() override
    {
        std::vector<CompiledKernel *> out;
        for (CompiledKernel &kernel : kernels) {
            out.push_back(&kernel);
        }
        return out;
    }
};

/**
 * Returns every added scratch lease to the pool on scope exit, so a
 * kernel that throws mid-chain (a binding USER_CHECK, a verifier
 * rejection) cannot leak leased arrays out of the ScratchPool.
 */
class ScratchLeaseGuard
{
  public:
    explicit ScratchLeaseGuard(const ParallelExecutor *executor)
        : executor_(executor)
    {
    }
    ScratchLeaseGuard(const ScratchLeaseGuard &) = delete;
    ScratchLeaseGuard &operator=(const ScratchLeaseGuard &) = delete;
    ~ScratchLeaseGuard() { releaseAll(); }

    void
    add(NDArray *array)
    {
        arrays_.push_back(array);
    }

    void
    releaseAll()
    {
        for (NDArray *array : arrays_) {
            executor_->releaseScratch(array);
        }
        arrays_.clear();
    }

  private:
    const ParallelExecutor *executor_;
    std::vector<NDArray *> arrays_;
};

// ---------------------------------------------------------------------
// Builders (miss path)
// ---------------------------------------------------------------------

std::shared_ptr<Artifact>
buildSpmmCsrArtifact(const Csr &a, int64_t feat,
                     const core::SpmmSchedule &schedule,
                     bool bytecode, bool verify)
{
    auto artifact = std::make_shared<SpmmCsrArtifact>();
    artifact->kernel = compileKernel(
        core::compileSpmmCsrFunc(feat, schedule), bytecode);
    if (verify) {
        verify::VerifyContext ctx = csrVerifyContext(a, feat);
        declareAccumSpec(&ctx, artifact->kernel, "", nullptr, 0);
        verifyKernelInto(artifact.get(), artifact->kernel, ctx,
                         "spmm_csr");
    }
    artifact->indptr = NDArray::fromInt32(a.indptr);
    artifact->indices = NDArray::fromInt32(a.indices);
    return artifact;
}

std::shared_ptr<Artifact>
buildSddmmArtifact(const Csr &a, int64_t feat,
                   const core::SddmmSchedule &schedule, bool bytecode,
                   bool verify)
{
    auto artifact = std::make_shared<SddmmArtifact>();
    artifact->kernel = compileKernel(
        core::compileSddmmFunc(feat, schedule), bytecode);
    if (verify) {
        verify::VerifyContext ctx = csrVerifyContext(a, feat);
        declareAccumSpec(&ctx, artifact->kernel, "", nullptr, 0);
        verifyKernelInto(artifact.get(), artifact->kernel, ctx,
                         "sddmm");
    }
    artifact->indptr = NDArray::fromInt32(a.indptr);
    artifact->indices = NDArray::fromInt32(a.indices);
    return artifact;
}

std::shared_ptr<Artifact>
buildBsrArtifact(const format::Bsr &a, int64_t feat,
                 const BsrConfig &config, bool bytecode, bool verify)
{
    auto artifact = std::make_shared<BsrArtifact>();
    artifact->kernel = compileKernel(
        core::compileBsrSpmmFunc(a.blockSize, feat,
                                 config.tensorCores),
        bytecode);
    if (verify) {
        verify::VerifyContext ctx;
        ctx.scalar("mb", a.blockRows);
        ctx.scalar("nb", a.blockCols);
        ctx.scalar("nnzb", a.nnzBlocks());
        ctx.scalar("feat_size", feat);
        ctx.int32Array("JO_indptr", a.indptr);
        ctx.int32Array("JO_indices", a.indices);
        declareAccumSpec(&ctx, artifact->kernel, "", nullptr, 0);
        verifyKernelInto(artifact.get(), artifact->kernel, ctx,
                         "bsr_spmm");
    }
    artifact->indptr = NDArray::fromInt32(a.indptr);
    artifact->indices = NDArray::fromInt32(a.indices);
    return artifact;
}

std::shared_ptr<Artifact>
buildSrbcrsArtifact(const format::SrBcrs &a, int64_t feat,
                    bool bytecode, bool verify)
{
    auto artifact = std::make_shared<SrbcrsArtifact>();
    artifact->kernel = compileKernel(
        core::compileSrbcrsSpmmFunc(a.tileHeight, a.groupSize, feat),
        bytecode);
    if (verify) {
        verify::VerifyContext ctx;
        ctx.scalar("stripes", a.stripes);
        ctx.scalar("n", a.cols);
        ctx.scalar("total_groups", a.numGroups());
        ctx.scalar("feat_size", feat);
        ctx.int32Array("G_indptr", a.groupIndptr);
        ctx.int32Array("T_indices", a.tileCols);
        declareAccumSpec(&ctx, artifact->kernel, "", nullptr, 0);
        verifyKernelInto(artifact.get(), artifact->kernel, ctx,
                         "srbcrs_spmm");
    }
    artifact->groupIndptr = NDArray::fromInt32(a.groupIndptr);
    artifact->tileCols = NDArray::fromInt32(a.tileCols);
    return artifact;
}

std::shared_ptr<Artifact>
buildSpmmHybArtifact(const Csr &a, int64_t feat,
                     const HybConfig &config, bool bytecode,
                     bool verify)
{
    format::Hyb hyb =
        format::hybFromCsr(a, config.partitions, config.bucketCapLog2);
    std::vector<core::HybKernelPlan> plans =
        core::compileSpmmHybFuncs(hyb, feat, config.threadX);

    auto artifact = std::make_shared<SpmmHybArtifact>();
    artifact->bucketCapLog2 = hyb.maxWidthLog2;
    artifact->indptr = NDArray::fromInt32(a.indptr);
    artifact->indices = NDArray::fromInt32(a.indices);
    artifact->buckets.reserve(plans.size());
    for (const core::HybKernelPlan &plan : plans) {
        const format::Ell &ell =
            hyb.buckets[plan.partition][plan.bucket];
        HybBucketData bucket;
        bucket.suffix = plan.suffix;
        bucket.kernel = compileKernel(plan.func, bytecode);
        bucket.kernel.exclusive = hasDuplicateRows(ell.rowIndices);
        restrictAccumSpans(&bucket.kernel, "C_data", ell.rowIndices,
                           feat);
        if (verify) {
            verify::VerifyContext ctx = csrVerifyContext(a, feat);
            ctx.int32Array(core::ellRowIndicesParam(plan.suffix),
                           ell.rowIndices);
            ctx.int32Array(core::ellColIndicesParam(plan.suffix),
                           ell.colIndices);
            declareAccumSpec(&ctx, bucket.kernel,
                             core::ellRowIndicesParam(plan.suffix),
                             &ell.rowIndices, feat);
            verifyKernelInto(artifact.get(), bucket.kernel, ctx,
                             "spmm_ell_" + plan.suffix);
        }
        bucket.rowIndices = NDArray::fromInt32(ell.rowIndices);
        bucket.colIndices = NDArray::fromInt32(ell.colIndices);
        bucket.gather = ell.sourcePos;
        artifact->buckets.push_back(std::move(bucket));
    }
    return artifact;
}

std::shared_ptr<Artifact>
buildRgcnArtifact(const format::RelationalCsr &graph, int64_t feat_in,
                  int64_t feat_out, const RgcnConfig &config,
                  bool bytecode, bool verify)
{
    auto artifact = std::make_shared<RgcnArtifact>();
    for (int64_t r = 0; r < graph.numRelations(); ++r) {
        const Csr &rel = graph.relations[r];
        if (rel.nnz() == 0) {
            continue;
        }
        format::Hyb hyb = format::hybFromCsr(
            rel, 1, model::rgcnBucketCap(rel, config.bucketCapLog2));
        for (size_t b = 0; b < hyb.buckets[0].size(); ++b) {
            const format::Ell &bucket = hyb.buckets[0][b];
            if (bucket.numRows() == 0) {
                continue;
            }
            RgcnUnit unit;
            unit.relation = static_cast<int>(r);
            unit.suffix =
                "r" + std::to_string(r) + "b" + std::to_string(b);
            int rows_per_block = model::rgcnRowsPerBlock(bucket.width);
            unit.kernel = compileKernel(
                core::compileEllRgmsFunc(bucket.numRows(),
                                         bucket.width, feat_in,
                                         feat_out, unit.suffix,
                                         config.tensorCores,
                                         rows_per_block),
                bytecode);
            unit.kernel.exclusive =
                hasDuplicateRows(bucket.rowIndices);
            // A unit touches only its bucket's rows of Y; on
            // many-relation graphs this trims the per-unit zero/fold
            // from the whole output to a few percent of it.
            restrictAccumSpans(&unit.kernel, "Y_data",
                               bucket.rowIndices, feat_out);
            if (verify) {
                verify::VerifyContext ctx;
                ctx.scalar("m", graph.rows);
                ctx.scalar("n", graph.cols);
                ctx.int32Array(
                    core::ellRowIndicesParam(unit.suffix),
                    bucket.rowIndices);
                ctx.int32Array(
                    core::ellColIndicesParam(unit.suffix),
                    bucket.colIndices);
                declareAccumSpec(
                    &ctx, unit.kernel,
                    core::ellRowIndicesParam(unit.suffix),
                    &bucket.rowIndices, feat_out);
                verifyKernelInto(artifact.get(), unit.kernel, ctx,
                                 "rgms_" + unit.suffix);
            }
            unit.rowIndices = NDArray::fromInt32(bucket.rowIndices);
            unit.colIndices = NDArray::fromInt32(bucket.colIndices);
            unit.gather = bucket.sourcePos;
            artifact->units.push_back(std::move(unit));
        }
    }
    USER_CHECK(!artifact->units.empty())
        << "relational graph has no non-zeros";
    return artifact;
}

std::shared_ptr<Artifact>
buildGraphArtifact(const dfg::OpGraph &graph, bool fuse,
                   bool bytecode, bool verify)
{
    auto artifact = std::make_shared<GraphArtifact>();
    dfg::GraphLowering lowering;
    {
        SPARSETIR_TRACE_SCOPE("dfg", fuse ? "dfg.fuse" : "dfg.lower");
        lowering = dfg::lowerGraph(graph, fuse);
    }
    artifact->fused = lowering.fused;
    artifact->modeReason = lowering.reason;
    artifact->kernels.reserve(lowering.funcs.size());
    for (const ir::PrimFunc &func : lowering.funcs) {
        artifact->kernels.push_back(compileKernel(func, bytecode));
    }
    if (verify) {
        verify::VerifyContext base;
        for (const dfg::StructureBinding &s : lowering.structures) {
            base.int32Array(s.indptrName, s.pattern->indptr);
            base.int32Array(s.indicesName, s.pattern->indices);
        }
        for (const CompiledKernel &kernel : artifact->kernels) {
            verify::VerifyContext ctx = base;
            declareAccumSpec(&ctx, kernel, "", nullptr, 0);
            verifyKernelInto(artifact.get(), kernel, ctx,
                             kernel.func->name);
        }
    }
    for (const dfg::StructureBinding &s : lowering.structures) {
        artifact->structures.emplace(
            s.indptrName, NDArray::fromInt32(s.pattern->indptr));
        artifact->structures.emplace(
            s.indicesName, NDArray::fromInt32(s.pattern->indices));
    }
    for (const dfg::LoweredTemp &temp : lowering.temps) {
        artifact->temps.push_back(GraphTemp{temp.name, temp.numel});
        artifact->tempBytes +=
            temp.numel * static_cast<int64_t>(sizeof(float));
    }
    return artifact;
}

// ---------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------

CacheKey
spmmCsrKey(const Csr &a, int64_t feat,
           const core::SpmmSchedule &schedule)
{
    CacheKey key;
    key.op = OpKind::kSpmmCsr;
    key.structure = structureHash(a);
    key.schedule = Fingerprint()
                       .i64(schedule.threadX)
                       .i64(schedule.rowsPerBlock)
                       .digest();
    key.featIn = feat;
    key.featOut = feat;
    key.rows = a.rows;
    key.nnz = a.nnz();
    return key;
}

CacheKey
spmmHybKey(const Csr &a, int64_t feat, const HybConfig &config)
{
    CacheKey key;
    key.op = OpKind::kSpmmHyb;
    key.structure = structureHash(a);
    key.schedule = Fingerprint()
                       .i64(config.partitions)
                       .i64(config.bucketCapLog2)
                       .i64(config.threadX)
                       .digest();
    key.featIn = feat;
    key.featOut = feat;
    key.rows = a.rows;
    key.nnz = a.nnz();
    return key;
}

CacheKey
sddmmKey(const Csr &a, int64_t feat,
         const core::SddmmSchedule &schedule)
{
    CacheKey key;
    key.op = OpKind::kSddmm;
    key.structure = structureHash(a);
    key.schedule = Fingerprint()
                       .i64(schedule.workloadsPerBlock)
                       .i64(schedule.groupSize)
                       .digest();
    key.featIn = feat;
    key.featOut = feat;
    key.rows = a.rows;
    key.nnz = a.nnz();
    return key;
}

CacheKey
rgcnKey(const format::RelationalCsr &graph, int64_t feat_in,
        int64_t feat_out, const RgcnConfig &config)
{
    CacheKey key;
    key.op = OpKind::kRgcnHyb;
    key.structure = structureHash(graph);
    key.schedule = Fingerprint()
                       .i64(config.bucketCapLog2)
                       .i64(config.tensorCores ? 1 : 0)
                       .digest();
    key.featIn = feat_in;
    key.featOut = feat_out;
    key.rows = graph.rows;
    key.nnz = graph.totalNnz();
    return key;
}

CacheKey
spmmBsrKey(const format::Bsr &a, int64_t feat,
           const BsrConfig &config)
{
    CacheKey key;
    key.op = OpKind::kSpmmBsr;
    key.structure = structureHash(a);
    key.schedule =
        Fingerprint().i64(config.tensorCores ? 1 : 0).digest();
    key.featIn = feat;
    key.featOut = feat;
    key.rows = a.rows;
    key.nnz = a.nnzBlocks();
    key.blockSize = a.blockSize;
    return key;
}

CacheKey
graphKey(const dfg::OpGraph &graph, bool fuse)
{
    CacheKey key;
    key.op = OpKind::kGraph;
    // The structure field carries the whole topology: op kinds,
    // dataflow edges, feature shapes, and every pattern's structure
    // hash — two graphs differing only in edge sparsity miss.
    key.structure = graph.topologyFingerprint();
    key.schedule = Fingerprint().i64(fuse ? 1 : 0).digest();
    key.rows = graph.rows();
    key.nnz = graph.totalNnz();
    return key;
}

CacheKey
spmmSrbcrsKey(const format::SrBcrs &a, int64_t feat)
{
    CacheKey key;
    key.op = OpKind::kSpmmSrbcrs;
    key.structure = structureHash(a);
    key.featIn = feat;
    key.featOut = feat;
    key.rows = a.rows;
    key.nnz = a.storedTiles();
    key.tileHeight = a.tileHeight;
    key.groupSize = a.groupSize;
    return key;
}

/**
 * Bindings for a hyb SpMM request over a cached artifact. The bucket
 * compute kernels only read the gathered A_ell_* arrays (the copy
 * iterations were split off and replaced by the format library), so
 * the host dispatch path skips the original CSR arrays entirely —
 * the interpreter resolves bindings lazily. The simulator path
 * (`for_simulation`) must bind every parameter, as gpusim rejects
 * unbound handles.
 */
std::shared_ptr<BindingSet>
bindSpmmHyb(SpmmHybArtifact &artifact, const Csr &a, int64_t feat,
            bool for_simulation)
{
    auto shared = std::make_shared<BindingSet>();
    shared->scalar("m", a.rows);
    shared->scalar("n", a.cols);
    shared->scalar("nnz", a.nnz());
    shared->scalar("feat_size", feat);
    if (for_simulation) {
        shared->external("J_indptr", &artifact.indptr);
        shared->external("J_indices", &artifact.indices);
        shared->own("A_data", NDArray::fromFloat(a.values));
    }
    for (HybBucketData &bucket : artifact.buckets) {
        shared->external(core::ellRowIndicesParam(bucket.suffix),
                         &bucket.rowIndices);
        shared->external(core::ellColIndicesParam(bucket.suffix),
                         &bucket.colIndices);
        shared->own(core::hybValuesParam(bucket.suffix),
                    NDArray::fromFloat(
                        gatherValues(bucket.gather, a.values)));
    }
    return shared;
}

/** Scalars, structure arrays and values shared by a BSR dispatch. */
void
bindBsrShared(BindingSet *bindings, BsrArtifact &artifact,
              const format::Bsr &a, int64_t feat)
{
    bindings->scalar("mb", a.blockRows);
    bindings->scalar("nb", a.blockCols);
    bindings->scalar("nnzb", a.nnzBlocks());
    bindings->scalar("feat_size", feat);
    bindings->external("JO_indptr", &artifact.indptr);
    bindings->external("JO_indices", &artifact.indices);
    bindings->own("A_data", NDArray::fromFloat(a.values));
}

/** Scalars, structure arrays and values of an SR-BCRS dispatch. */
void
bindSrbcrsShared(BindingSet *bindings, SrbcrsArtifact &artifact,
                 const format::SrBcrs &a, int64_t feat)
{
    bindings->scalar("stripes", a.stripes);
    bindings->scalar("n", a.cols);
    bindings->scalar("total_groups", a.numGroups());
    bindings->scalar("feat_size", feat);
    bindings->external("G_indptr", &artifact.groupIndptr);
    bindings->external("T_indices", &artifact.tileCols);
    bindings->own("A_data", NDArray::fromFloat(a.values));
}

/**
 * Per-request binding views of a batch: the shared base plus each
 * request's private B/C. Outputs must be distinct, and no output may
 * alias any request's input — requests run concurrently, so a write
 * into another request's (or its own) feature matrix would race and
 * break the bitwise contract. Sharing one read-only B across
 * requests is fine.
 */
std::vector<runtime::Bindings>
requestViews(const runtime::Bindings &base,
             const std::vector<SpmmRequest> &requests)
{
    std::unordered_set<const NDArray *> outputs;
    outputs.reserve(requests.size());
    for (const SpmmRequest &request : requests) {
        USER_CHECK(request.b != nullptr && request.c != nullptr)
            << "batched SpMM request is missing a feature or output "
               "array";
        USER_CHECK(outputs.insert(request.c).second)
            << "batched SpMM requests must bind distinct output "
               "arrays";
    }
    std::vector<runtime::Bindings> views;
    views.reserve(requests.size());
    for (const SpmmRequest &request : requests) {
        USER_CHECK(outputs.count(request.b) == 0)
            << "batched SpMM request aliases a feature matrix with "
               "an output array";
        runtime::Bindings view = base;
        view.arrays["B_data"] = request.b;
        view.arrays["C_data"] = request.c;
        views.push_back(std::move(view));
    }
    return views;
}

} // namespace

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

Engine::Engine(EngineOptions options)
    : options_(options),
      pool_(std::make_shared<ThreadPool>(options.numThreads)),
      executor_(pool_),
      metrics_(std::make_unique<observe::MetricsRegistry>()),
      cache_(options.cacheCapacity, metrics_.get())
{
    if (options.trace || observe::traceRequestedByEnv()) {
        observe::TraceRecorder::global().setEnabled(true);
    }
    // SPARSETIR_NATIVE=1 upgrades the default serving backend to the
    // tiered native path; an explicit interpreter selection wins.
    if (options_.backend == runtime::Backend::kBytecode &&
        runtime::native::nativeEnabledByEnv()) {
        options_.backend = runtime::Backend::kNative;
    }
    requests_ = metrics_->counter("engine.requests");
    cacheHits_ = metrics_->counter("engine.cache_hits");
    cacheMisses_ = metrics_->counter("engine.cache_misses");
    compileMs_ = metrics_->histogram("engine.compile_ms");
    execMs_ = metrics_->histogram("engine.exec_ms");
    launchProbes_ = metrics_->counter("runtime.launch_probes");
    nativePromotions_ = metrics_->counter("native.promotions");
    nativeCompiles_ = metrics_->counter("native.compiles");
    nativeDiskHits_ = metrics_->counter("native.disk_hits");
    nativeFallbacks_ = metrics_->counter("native.fallbacks");
    nativeCompileMs_ = metrics_->histogram("native.compile_ms");
    for (OpKind op :
         {OpKind::kSpmmCsr, OpKind::kSpmmHyb, OpKind::kSddmm,
          OpKind::kRgcnHyb, OpKind::kSpmmBsr, OpKind::kSpmmSrbcrs,
          OpKind::kGraph}) {
        for (bool warm : {true, false}) {
            std::string name =
                std::string(warm ? "engine.warm_dispatch_ms."
                                 : "engine.cold_dispatch_ms.") +
                opKindName(op);
            opLatency_[warm ? 0 : 1][static_cast<int>(op)] =
                metrics_->histogram(name);
        }
    }
}

Engine::~Engine()
{
    // Background promotion tasks capture `this` and record into the
    // session registry; members destruct in reverse declaration
    // order, so the registry would be gone before pool_ joins its
    // workers. Wait for every launched promotion first. No dispatch
    // runs concurrently with destruction (usual dtor contract), so
    // the future list cannot grow under us after the swap.
    std::vector<std::future<void>> pending;
    {
        std::lock_guard<std::mutex> lock(promoMu_);
        pending.swap(promoFutures_);
    }
    for (std::future<void> &done : pending) {
        if (done.valid()) {
            done.wait();
        }
    }
}

observe::LatencyHistogram *
Engine::opLatency(OpKind op, bool warm)
{
    return opLatency_[warm ? 0 : 1][static_cast<int>(op)];
}

observe::MetricsSnapshot
Engine::metricsSnapshot() const
{
    observe::MetricsSnapshot snap = metrics_->snapshot();
    ScratchStats scratch = executor_.scratchStats();
    snap.counters["scratch.leases"] =
        static_cast<uint64_t>(scratch.leases);
    snap.counters["scratch.allocations"] =
        static_cast<uint64_t>(scratch.allocations);
    snap.gauges["scratch.leased_bytes"] = scratch.leasedBytes;
    snap.gauges["scratch.peak_leased_bytes"] = scratch.peakLeasedBytes;
    snap.gauges["scratch.free_bytes"] = scratch.freeBytes;
    return snap;
}

ExecOptions
Engine::execOptions() const
{
    ExecOptions exec;
    exec.parallel = options_.parallel;
    exec.minBlocksPerChunk = options_.minBlocksPerChunk;
    exec.backend = options_.backend;
    exec.fusedDispatch = options_.fusedDispatch;
    return exec;
}

void
Engine::runMultiKernel(
    const std::vector<const CompiledKernel *> &kernels,
    const runtime::Bindings &bindings)
{
    ExecOptions exec = execOptions();
    if (exec.fusedDispatch) {
        executor_.runKernelsFused(kernels, bindings, exec);
    } else {
        executor_.runKernels(kernels, bindings, exec);
    }
}

void
Engine::runMultiKernelBatch(
    const std::vector<const CompiledKernel *> &kernels,
    const std::vector<runtime::Bindings> &requests)
{
    ExecOptions exec = execOptions();
    if (exec.fusedDispatch) {
        executor_.runKernelsFused(kernels, requests, exec);
    } else {
        executor_.runKernelsBatch(kernels, requests, exec);
    }
}

std::shared_ptr<Artifact>
Engine::resolve(const CacheKey &key,
                const std::function<std::shared_ptr<Artifact>()> &builder,
                DispatchInfo *info)
{
    SPARSETIR_TRACE_SCOPE1("engine", "engine.resolve", "op",
                           static_cast<int64_t>(key.op));
    // Attribute any grid probes the builder makes (there should be
    // none on warm paths) to THIS engine's registry.
    runtime::ProbeCounterScope probe_scope(launchProbes_);
    auto start = std::chrono::steady_clock::now();
    bool hit = false;
    std::shared_ptr<Artifact> artifact =
        cache_.getOrBuild(key, builder, &hit);
    // The verify verdict rides on the artifact: a failed proof was paid
    // for once at build, and every dispatch that touches the artifact —
    // including warm hits — refuses it at zero re-proving cost.
    if (!artifact->verify.ok) {
        verify::VerifyResult failed;
        failed.ok = false;
        failed.diagnostics = artifact->verify.diagnostics;
        USER_CHECK(false)
            << "compiled artifact failed static verification:\n"
            << verify::formatDiagnostics(failed);
    }
    info->cacheHit = hit;
    info->compileMs = msSince(start);
    if (options_.backend == runtime::Backend::kNative) {
        maybePromote(key, artifact);
    }
    return artifact;
}

void
Engine::maybePromote(const CacheKey &key,
                     const std::shared_ptr<Artifact> &artifact)
{
    if (options_.nativePromoteAfter < 0) {
        return;
    }
    bool launch = false;
    {
        std::lock_guard<std::mutex> lock(promoMu_);
        PromoState &state = promo_[key];
        if (state.launched) {
            return;
        }
        if (++state.warmHits > options_.nativePromoteAfter) {
            state.launched = true;
            launch = true;
        }
    }
    if (!launch) {
        return;
    }
    if (options_.nativePromoteAfter == 0) {
        // Synchronous promotion: deterministic for tests — the first
        // resolve already serves native.
        promoteNow(key, artifact);
        return;
    }
    std::shared_ptr<Artifact> keep = artifact;
    CacheKey promoted_key = key;
    std::future<void> done =
        pool_->submit([this, promoted_key, keep] {
            // promoteNow never submits to or waits on the pool, so a
            // promotion task cannot deadlock behind dispatch work.
            promoteNow(promoted_key, keep);
        });
    std::lock_guard<std::mutex> lock(promoMu_);
    promoFutures_.push_back(std::move(done));
}

void
Engine::promoteNow(const CacheKey &key,
                   const std::shared_ptr<Artifact> &artifact)
{
    SPARSETIR_TRACE_SCOPE1("native", "native.promote", "op",
                           static_cast<int64_t>(key.op));
    std::vector<CompiledKernel *> kernels = artifact->nativeKernels();
    int index = 0;
    for (CompiledKernel *kernel : kernels) {
        int kernel_index = index++;
        if (kernel->native == nullptr ||
            kernel->native->get() != nullptr) {
            continue;
        }
        std::string tag = nativeKeyTag(key, kernel_index);
        auto start = std::chrono::steady_clock::now();
        try {
            auto native =
                runtime::native::compileNative(kernel->func, tag);
            nativeCompileMs_->record(msSince(start));
            (native->diskHit ? nativeDiskHits_ : nativeCompiles_)
                ->add(1);
            kernel->native->set(std::move(native));
        } catch (const UserError &) {
            // Outside the native subset, or cc missing/failed: the
            // kernel keeps serving bytecode.
            nativeFallbacks_->add(1);
        }
    }
    nativePromotions_->add(1);
}

NativeStats
Engine::nativeStats() const
{
    NativeStats stats;
    stats.promotions = nativePromotions_->value();
    stats.compiles = nativeCompiles_->value();
    stats.diskHits = nativeDiskHits_->value();
    stats.fallbacks = nativeFallbacks_->value();
    return stats;
}

void
Engine::finishDispatch(const DispatchInfo &info, OpKind op)
{
    requests_->add(1);
    (info.cacheHit ? cacheHits_ : cacheMisses_)->add(1);
    compileMs_->record(info.compileMs);
    execMs_->record(info.execMs);
    // prepareSpmmHyb finishes with no kernels executed; keep its
    // zero-latency "dispatch" out of the latency distributions.
    if (info.numKernels > 0) {
        opLatency(op, info.cacheHit)->record(info.execMs);
    }
}

void
Engine::finishBatch(const BatchDispatchInfo &info, OpKind op)
{
    requests_->add(static_cast<uint64_t>(info.numRequests));
    if (info.numRequests > 0) {
        // One resolve serves the whole batch: on a miss exactly one
        // request paid the compile, the rest rode the fresh artifact.
        cacheHits_->add(static_cast<uint64_t>(
            info.cacheHit ? info.numRequests : info.numRequests - 1));
        if (!info.cacheHit) {
            cacheMisses_->add(1);
        }
    }
    compileMs_->record(info.compileMs);
    execMs_->record(info.execMs);
    if (info.numRequests > 0 && info.numKernels > 0) {
        double per_request =
            info.execMs / static_cast<double>(info.numRequests);
        observe::LatencyHistogram *hist =
            opLatency(op, info.cacheHit);
        for (int i = 0; i < info.numRequests; ++i) {
            hist->record(per_request);
        }
    }
}

EngineStats
Engine::stats() const
{
    EngineStats stats;
    stats.requests = requests_->value();
    stats.cacheHits = cacheHits_->value();
    stats.cacheMisses = cacheMisses_->value();
    stats.totalCompileMs = compileMs_->sumMs();
    stats.totalExecMs = execMs_->sumMs();
    return stats;
}

DispatchInfo
Engine::spmmCsr(const Csr &a, int64_t feat, NDArray *b, NDArray *c,
                const core::SpmmSchedule &schedule)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_csr");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<SpmmCsrArtifact>(
        resolve(spmmCsrKey(a, feat, schedule),
                [&] {
                    return buildSpmmCsrArtifact(
                        a, feat, schedule, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &info));

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet bindings;
    bindings.scalar("m", a.rows);
    bindings.scalar("n", a.cols);
    bindings.scalar("nnz", a.nnz());
    bindings.scalar("feat_size", feat);
    bindings.external("J_indptr", &artifact->indptr);
    bindings.external("J_indices", &artifact->indices);
    bindings.own("A_data", NDArray::fromFloat(a.values));
    bindings.external("B_data", b);
    bindings.external("C_data", c);
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        executor_.runKernel(artifact->kernel, bindings.view(),
                            execOptions());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = 1;
    finishDispatch(info, OpKind::kSpmmCsr);
    return info;
}

DispatchInfo
Engine::spmmHyb(const Csr &a, int64_t feat, NDArray *b, NDArray *c,
                const HybConfig &config)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_hyb");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<SpmmHybArtifact>(
        resolve(spmmHybKey(a, feat, config),
                [&] {
                    return buildSpmmHybArtifact(
                        a, feat, config, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &info));

    auto bind_start = std::chrono::steady_clock::now();
    // Bucket kernels accumulate partial sums; the dispatch owns the
    // overwrite contract (C = A @ B), so clear the output here.
    c->zero();
    auto shared =
        bindSpmmHyb(*artifact, a, feat, /*for_simulation=*/false);
    shared->external("B_data", b);
    shared->external("C_data", c);
    std::vector<const CompiledKernel *> kernels;
    kernels.reserve(artifact->buckets.size());
    for (const HybBucketData &bucket : artifact->buckets) {
        kernels.push_back(&bucket.kernel);
    }
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        runMultiKernel(kernels, shared->view());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = static_cast<int>(kernels.size());
    finishDispatch(info, OpKind::kSpmmHyb);
    return info;
}

DispatchInfo
Engine::dispatchGraph(const dfg::OpGraph &graph,
                      const std::map<std::string, NDArray *> &io,
                      const GraphDispatchOptions &options)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.graph");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<GraphArtifact>(
        resolve(graphKey(graph, options.fuse),
                [&] {
                    return buildGraphArtifact(
                        graph, options.fuse, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &info));

    auto bind_start = std::chrono::steady_clock::now();
    // Every named value (graph input or marked output) needs an array
    // of the exact element count; unknown names are request bugs.
    size_t named = 0;
    for (const dfg::ValueDesc &desc : graph.values()) {
        if (desc.name.empty()) {
            continue;
        }
        named += 1;
        auto it = io.find(desc.name);
        USER_CHECK(it != io.end() && it->second != nullptr)
            << "graph dispatch is missing an array for value '"
            << desc.name << "'";
        int64_t numel = desc.edge ? desc.pattern->nnz()
                                  : desc.rows * desc.cols;
        USER_CHECK(it->second->numel() == numel)
            << "array for graph value '" << desc.name << "' has "
            << it->second->numel() << " elements, graph expects "
            << numel;
    }
    USER_CHECK(io.size() == named)
        << "graph dispatch got " << io.size() << " arrays for "
        << named << " named values — unknown names in the io map";

    BindingSet bindings;
    for (auto &kv : artifact->structures) {
        bindings.external(kv.first, &kv.second);
    }
    for (const auto &kv : io) {
        bindings.external(kv.first, kv.second);
    }
    // Chain mode materializes interior tensors in pooled scratch; the
    // fused kernel has none (per-row locals), so its dispatch leases
    // nothing and the scratch peak stays at zero. No zeroing needed:
    // every element a chain kernel reads was written by its producer.
    ScratchLeaseGuard leased(&executor_);
    for (const GraphTemp &temp : artifact->temps) {
        ScratchPool::Lease lease = executor_.leaseScratch(
            temp.numel, ir::DataType::float32());
        leased.add(lease.array);
        bindings.external(temp.name, lease.array);
    }
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        // Chain kernels run in dataflow order, each internally
        // parallel over rows — the barriered oracle the fused program
        // is bitwise-checked against.
        for (const CompiledKernel &kernel : artifact->kernels) {
            executor_.runKernel(kernel, bindings.view(),
                                execOptions());
        }
    }
    leased.releaseAll();
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = static_cast<int>(artifact->kernels.size());
    finishDispatch(info, OpKind::kGraph);
    return info;
}

DispatchInfo
Engine::sddmm(const Csr &a, int64_t feat, NDArray *x, NDArray *y,
              NDArray *out, const core::SddmmSchedule &schedule)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.sddmm");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<SddmmArtifact>(
        resolve(sddmmKey(a, feat, schedule),
                [&] {
                    return buildSddmmArtifact(
                        a, feat, schedule, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &info));

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet bindings;
    bindings.scalar("m", a.rows);
    bindings.scalar("n", a.cols);
    bindings.scalar("nnz", a.nnz());
    bindings.scalar("feat_size", feat);
    bindings.external("J_indptr", &artifact->indptr);
    bindings.external("J_indices", &artifact->indices);
    bindings.own("A_data", NDArray::fromFloat(a.values));
    bindings.external("X_data", x);
    bindings.external("Y_data", y);
    bindings.external("B_data", out);
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        executor_.runKernel(artifact->kernel, bindings.view(),
                            execOptions());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = 1;
    finishDispatch(info, OpKind::kSddmm);
    return info;
}

DispatchInfo
Engine::rgcn(const format::RelationalCsr &graph, int64_t feat,
             NDArray *x, NDArray *w, NDArray *y,
             const RgcnConfig &config)
{
    return rgcn(graph, feat, feat, x, w, y, config);
}

DispatchInfo
Engine::rgcn(const format::RelationalCsr &graph, int64_t featIn,
             int64_t featOut, NDArray *x, NDArray *w, NDArray *y,
             const RgcnConfig &config)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.rgcn_hyb");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<RgcnArtifact>(
        resolve(rgcnKey(graph, featIn, featOut, config),
                [&] {
                    return buildRgcnArtifact(
                        graph, featIn, featOut, config,
                        usesBytecode(), options_.verifyArtifacts);
                },
                &info));

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet bindings;
    bindings.scalar("m", graph.rows);
    bindings.scalar("n", graph.cols);
    bindings.scalar("feat_in", featIn);
    bindings.scalar("feat_out", featOut);
    bindings.external("X_data", x);
    bindings.external("W_data", w);
    bindings.external("Y_data", y);
    std::vector<const CompiledKernel *> kernels;
    kernels.reserve(artifact->units.size());
    for (RgcnUnit &unit : artifact->units) {
        bindings.external(core::ellRowIndicesParam(unit.suffix),
                          &unit.rowIndices);
        bindings.external(core::ellColIndicesParam(unit.suffix),
                          &unit.colIndices);
        bindings.own(core::rgmsValuesParam(unit.suffix),
                     NDArray::fromFloat(gatherValues(
                         unit.gather,
                         graph.relations[unit.relation].values)));
        kernels.push_back(&unit.kernel);
    }
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        runMultiKernel(kernels, bindings.view());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = static_cast<int>(kernels.size());
    finishDispatch(info, OpKind::kRgcnHyb);
    return info;
}

DispatchInfo
Engine::spmmBsr(const format::Bsr &a, int64_t feat, NDArray *b,
                NDArray *c, const BsrConfig &config)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_bsr");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<BsrArtifact>(
        resolve(spmmBsrKey(a, feat, config),
                [&] {
                    return buildBsrArtifact(
                        a, feat, config, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &info));

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet bindings;
    bindBsrShared(&bindings, *artifact, a, feat);
    bindings.external("B_data", b);
    bindings.external("C_data", c);
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        executor_.runKernel(artifact->kernel, bindings.view(),
                            execOptions());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = 1;
    finishDispatch(info, OpKind::kSpmmBsr);
    return info;
}

DispatchInfo
Engine::spmmSrbcrs(const format::SrBcrs &a, int64_t feat, NDArray *b,
                   NDArray *c)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_srbcrs");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<SrbcrsArtifact>(
        resolve(spmmSrbcrsKey(a, feat),
                [&] {
                    return buildSrbcrsArtifact(
                        a, feat, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &info));

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet bindings;
    bindSrbcrsShared(&bindings, *artifact, a, feat);
    bindings.external("B_data", b);
    bindings.external("C_data", c);
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        executor_.runKernel(artifact->kernel, bindings.view(),
                            execOptions());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = 1;
    finishDispatch(info, OpKind::kSpmmSrbcrs);
    return info;
}

// ---------------------------------------------------------------------
// Batched dispatch
// ---------------------------------------------------------------------

BatchDispatchInfo
Engine::spmmCsrBatch(const Csr &a, int64_t feat,
                     const std::vector<SpmmRequest> &requests,
                     const core::SpmmSchedule &schedule)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_csr_batch");
    BatchDispatchInfo info;
    info.numRequests = static_cast<int>(requests.size());
    if (requests.empty()) {
        return info;
    }
    DispatchInfo resolved;
    auto artifact = std::static_pointer_cast<SpmmCsrArtifact>(
        resolve(spmmCsrKey(a, feat, schedule),
                [&] {
                    return buildSpmmCsrArtifact(
                        a, feat, schedule, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &resolved));
    info.cacheHit = resolved.cacheHit;
    info.compileMs = resolved.compileMs;

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet base;
    base.scalar("m", a.rows);
    base.scalar("n", a.cols);
    base.scalar("nnz", a.nnz());
    base.scalar("feat_size", feat);
    base.external("J_indptr", &artifact->indptr);
    base.external("J_indices", &artifact->indices);
    base.own("A_data", NDArray::fromFloat(a.values));
    std::vector<runtime::Bindings> views =
        requestViews(base.view(), requests);
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        executor_.runKernelBatch(artifact->kernel, views,
                                 execOptions());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = 1;
    finishBatch(info, OpKind::kSpmmCsr);
    return info;
}

BatchDispatchInfo
Engine::spmmHybBatch(const Csr &a, int64_t feat,
                     const std::vector<SpmmRequest> &requests,
                     const HybConfig &config)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_hyb_batch");
    BatchDispatchInfo info;
    info.numRequests = static_cast<int>(requests.size());
    if (requests.empty()) {
        return info;
    }
    DispatchInfo resolved;
    auto artifact = std::static_pointer_cast<SpmmHybArtifact>(
        resolve(spmmHybKey(a, feat, config),
                [&] {
                    return buildSpmmHybArtifact(
                        a, feat, config, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &resolved));
    info.cacheHit = resolved.cacheHit;
    info.compileMs = resolved.compileMs;

    auto bind_start = std::chrono::steady_clock::now();
    auto shared =
        bindSpmmHyb(*artifact, a, feat, /*for_simulation=*/false);
    // Validate the whole batch (requestViews throws on aliasing)
    // BEFORE mutating any caller array; only then apply the
    // per-request overwrite contract, exactly like the serial
    // spmmHyb (bucket kernels accumulate).
    std::vector<runtime::Bindings> views =
        requestViews(shared->view(), requests);
    for (const SpmmRequest &request : requests) {
        request.c->zero();
    }
    std::vector<const CompiledKernel *> kernels;
    kernels.reserve(artifact->buckets.size());
    for (const HybBucketData &bucket : artifact->buckets) {
        kernels.push_back(&bucket.kernel);
    }
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        runMultiKernelBatch(kernels, views);
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = static_cast<int>(kernels.size());
    finishBatch(info, OpKind::kSpmmHyb);
    return info;
}

BatchDispatchInfo
Engine::spmmHybBatch(const PreparedSpmmHyb &prepared,
                     const std::vector<SpmmRequest> &requests)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_hyb_batch");
    BatchDispatchInfo info;
    info.numRequests = static_cast<int>(requests.size());
    if (requests.empty()) {
        return info;
    }
    USER_CHECK(prepared.artifact != nullptr &&
               prepared.bindings != nullptr)
        << "batched dispatch needs a handle from prepareSpmmHyb";
    // prepareSpmmHyb is the only producer of this handle type, so
    // the artifact is a hyb artifact by construction.
    auto artifact =
        std::static_pointer_cast<SpmmHybArtifact>(prepared.artifact);
    info.cacheHit = true;

    auto bind_start = std::chrono::steady_clock::now();
    // Validate before zeroing: a rejected batch must leave every
    // caller array untouched.
    std::vector<runtime::Bindings> views =
        requestViews(prepared.bindings->view(), requests);
    for (const SpmmRequest &request : requests) {
        request.c->zero();
    }
    std::vector<const CompiledKernel *> kernels;
    kernels.reserve(artifact->buckets.size());
    for (const HybBucketData &bucket : artifact->buckets) {
        kernels.push_back(&bucket.kernel);
    }
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        runMultiKernelBatch(kernels, views);
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = static_cast<int>(kernels.size());
    finishBatch(info, OpKind::kSpmmHyb);
    return info;
}

BatchDispatchInfo
Engine::spmmBsrBatch(const format::Bsr &a, int64_t feat,
                     const std::vector<SpmmRequest> &requests,
                     const BsrConfig &config)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_bsr_batch");
    BatchDispatchInfo info;
    info.numRequests = static_cast<int>(requests.size());
    if (requests.empty()) {
        return info;
    }
    DispatchInfo resolved;
    auto artifact = std::static_pointer_cast<BsrArtifact>(
        resolve(spmmBsrKey(a, feat, config),
                [&] {
                    return buildBsrArtifact(
                        a, feat, config, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &resolved));
    info.cacheHit = resolved.cacheHit;
    info.compileMs = resolved.compileMs;

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet base;
    bindBsrShared(&base, *artifact, a, feat);
    std::vector<runtime::Bindings> views =
        requestViews(base.view(), requests);
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        executor_.runKernelBatch(artifact->kernel, views,
                                 execOptions());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = 1;
    finishBatch(info, OpKind::kSpmmBsr);
    return info;
}

BatchDispatchInfo
Engine::spmmSrbcrsBatch(const format::SrBcrs &a, int64_t feat,
                        const std::vector<SpmmRequest> &requests)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_srbcrs_batch");
    BatchDispatchInfo info;
    info.numRequests = static_cast<int>(requests.size());
    if (requests.empty()) {
        return info;
    }
    DispatchInfo resolved;
    auto artifact = std::static_pointer_cast<SrbcrsArtifact>(
        resolve(spmmSrbcrsKey(a, feat),
                [&] {
                    return buildSrbcrsArtifact(
                        a, feat, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &resolved));
    info.cacheHit = resolved.cacheHit;
    info.compileMs = resolved.compileMs;

    auto bind_start = std::chrono::steady_clock::now();
    BindingSet base;
    bindSrbcrsShared(&base, *artifact, a, feat);
    std::vector<runtime::Bindings> views =
        requestViews(base.view(), requests);
    info.bindMs = msSince(bind_start);
    auto kernel_start = std::chrono::steady_clock::now();
    {
        SPARSETIR_TRACE_SCOPE("engine", "engine.exec");
        executor_.runKernelBatch(artifact->kernel, views,
                                 execOptions());
    }
    info.kernelMs = msSince(kernel_start);
    info.execMs = info.bindMs + info.kernelMs;
    info.numKernels = 1;
    finishBatch(info, OpKind::kSpmmSrbcrs);
    return info;
}

PreparedSpmmHyb
Engine::prepareSpmmHyb(const Csr &a, int64_t feat,
                       const HybConfig &config)
{
    SPARSETIR_TRACE_SCOPE("engine", "dispatch.prepare_spmm_hyb");
    DispatchInfo info;
    auto artifact = std::static_pointer_cast<SpmmHybArtifact>(
        resolve(spmmHybKey(a, feat, config),
                [&] {
                    return buildSpmmHybArtifact(
                        a, feat, config, usesBytecode(),
                        options_.verifyArtifacts);
                },
                &info));
    finishDispatch(info, OpKind::kSpmmHyb);

    PreparedSpmmHyb prepared;
    prepared.cacheHit = info.cacheHit;
    prepared.bucketCapLog2 = artifact->bucketCapLog2;
    prepared.artifact = artifact;
    prepared.bindings =
        bindSpmmHyb(*artifact, a, feat, /*for_simulation=*/true);
    for (const HybBucketData &bucket : artifact->buckets) {
        prepared.kernels.push_back(std::make_shared<core::BoundKernel>(
            bucket.kernel.func, prepared.bindings));
    }
    return prepared;
}

} // namespace engine
} // namespace sparsetir
