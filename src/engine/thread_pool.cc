#include "engine/thread_pool.h"

#include <algorithm>
#include <cstdio>

#include "observe/trace.h"
#include "support/logging.h"

namespace sparsetir {
namespace engine {

namespace {

/** The pool whose workerLoop owns the current thread, if any. */
thread_local const ThreadPool *tls_worker_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        num_threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    }
    workers_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> result = packaged.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        ICHECK(!stopping_) << "submit on a stopped thread pool";
        queue_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return result;
}

bool
ThreadPool::onWorkerThread() const
{
    return tls_worker_pool == this;
}

void
ThreadPool::parallelFor(int64_t n, const std::function<void(int64_t)> &fn)
{
    if (n <= 0) {
        return;
    }
    // Caller-runs paths: singleton ranges and size-1 pools gain
    // nothing from fan-out, and a call from one of our own workers
    // MUST run inline — the worker would otherwise block on futures
    // while occupying the slot its sub-tasks need, and once every
    // worker does that (nested dispatch on a saturated pool) nothing
    // runs anything: deadlock.
    if (n == 1 || size() == 1 || onWorkerThread()) {
        for (int64_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
        futures.push_back(submit([&fn, i] { fn(i); }));
    }
    // Drain every future so all tasks finish before any capture dies;
    // surface the first failure.
    std::exception_ptr first_error;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (first_error == nullptr) {
                first_error = std::current_exception();
            }
        }
    }
    if (first_error != nullptr) {
        std::rethrow_exception(first_error);
    }
}

void
ThreadPool::workerLoop(int index)
{
    tls_worker_pool = this;
    // Stage the trace attribution name; costs nothing until (unless)
    // tracing records an event on this thread.
    char name[32];
    std::snprintf(name, sizeof name, "worker-%d", index);
    observe::TraceRecorder::setCurrentThreadName(name);
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();  // exceptions land in the task's future
    }
}

} // namespace engine
} // namespace sparsetir
