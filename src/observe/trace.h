/**
 * @file
 * Spans-and-events tracing: the timeline half of the observability
 * layer.
 *
 * A TraceRecorder collects TraceEvents into per-thread ring buffers.
 * Recording is designed around one invariant: when tracing is
 * disabled (the default), a TraceScope costs exactly one relaxed
 * atomic load and allocates nothing — no thread buffer is created,
 * no clock is read, no event is stored. Enabled, a span costs two
 * steady_clock reads and one ring-slot write under a per-thread
 * mutex that is uncontended except during export.
 *
 * Event names and categories are `const char *` by contract pointing
 * at string literals (or other storage outliving the recorder):
 * events store the pointers, never copies, which is what keeps the
 * record path allocation-free.
 *
 * Export: writeChromeTrace() emits Chrome trace-event JSON ("X"
 * complete events plus "M" thread_name metadata) loadable in
 * Perfetto / chrome://tracing; textSummary() prints the top spans by
 * self-time (duration minus enclosed same-thread spans).
 */

#ifndef SPARSETIR_OBSERVE_TRACE_H_
#define SPARSETIR_OBSERVE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sparsetir {
namespace observe {

/**
 * One completed span. POD; name/cat/arg names must be string
 * literals (see file comment). Up to two integer args survive into
 * the Chrome trace "args" object.
 */
struct TraceEvent
{
    const char *name = nullptr;
    const char *cat = nullptr;
    int64_t startNs = 0;
    int64_t durNs = 0;
    const char *arg0Name = nullptr; // null: no args
    int64_t arg0 = 0;
    const char *arg1Name = nullptr; // null: at most one arg
    int64_t arg1 = 0;
};

/** A TraceEvent plus the recorder-assigned thread identity. */
struct CollectedEvent
{
    TraceEvent event;
    int tid = 0;
    std::string threadName;
};

class TraceRecorder
{
  public:
    /** Implementation detail (per-thread ring buffer), public only
     *  so the thread-local cache in trace.cc can hold one. */
    struct ThreadBuf;

    TraceRecorder();
    ~TraceRecorder();

    /** Process-wide recorder the SPARSETIR_TRACE_SCOPE macros use. */
    static TraceRecorder &global();

    /** The one check on every disabled-mode span. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * Append a completed span to this thread's ring buffer. Creates
     * and registers the buffer on the thread's first event; once the
     * ring is full the oldest events are overwritten (droppedCount()
     * tallies the overwrites). Callers must check enabled() first —
     * record() itself always records.
     */
    void record(const TraceEvent &event);

    /**
     * Name the calling thread in exports ("worker-3"). Buffered in
     * thread-local storage (truncated to 47 chars), applied when the
     * thread's buffer is created — callable whether or not tracing
     * is on, never allocating.
     */
    static void setCurrentThreadName(const char *name);

    /** Span timestamps: monotonic nanoseconds. */
    static int64_t nowNs();

    /**
     * Ring capacity (events per thread) for buffers created after
     * the call. Default 16384.
     */
    void setRingCapacity(size_t events);

    /** Drop all buffered events and thread registrations. */
    void clear();

    /** Events currently buffered, summed over threads. */
    uint64_t eventCount() const;

    /** Events overwritten by ring wrap-around, summed. */
    uint64_t droppedCount() const;

    /** Threads that have recorded at least one event. */
    size_t threadCount() const;

    /** Copy out every buffered event, oldest first per thread. */
    std::vector<CollectedEvent> collect() const;

    /**
     * Write Chrome trace-event JSON to `path`. Timestamps are
     * rebased to the earliest buffered event. Returns false when the
     * file cannot be written.
     */
    bool writeChromeTrace(const std::string &path) const;

    /**
     * Top `top_n` span names by total self-time: per-thread, a
     * span's self-time is its duration minus the durations of spans
     * it directly encloses.
     */
    std::string textSummary(size_t top_n = 12) const;

  private:
    ThreadBuf *threadBuf();

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<ThreadBuf>> bufs_;
    size_t ringCapacity_ = 16384;
    int nextTid_ = 1;
    uint64_t generation_ = 0; // bumped by clear(): invalidates
                              // threads' cached buffer pointers
};

/**
 * RAII span against the global recorder. Disabled: one atomic load
 * in the constructor, a dead-flag check in the destructor. Enabled:
 * clocks the construction-to-destruction interval and records it;
 * end() closes the span early (idempotent), for code whose timed
 * region does not align with a C++ scope.
 */
class TraceScope
{
  public:
    TraceScope(const char *cat, const char *name)
    {
        if (TraceRecorder::global().enabled()) {
            begin(cat, name);
        }
    }

    TraceScope(const char *cat, const char *name,
               const char *arg0_name, int64_t arg0)
    {
        if (TraceRecorder::global().enabled()) {
            begin(cat, name);
            event_.arg0Name = arg0_name;
            event_.arg0 = arg0;
        }
    }

    TraceScope(const char *cat, const char *name,
               const char *arg0_name, int64_t arg0,
               const char *arg1_name, int64_t arg1)
    {
        if (TraceRecorder::global().enabled()) {
            begin(cat, name);
            event_.arg0Name = arg0_name;
            event_.arg0 = arg0;
            event_.arg1Name = arg1_name;
            event_.arg1 = arg1;
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        end();
    }

    /** Close the span now instead of at destruction. */
    void
    end()
    {
        if (active_) {
            active_ = false;
            finish();
        }
    }

  private:
    void
    begin(const char *cat, const char *name)
    {
        event_.cat = cat;
        event_.name = name;
        event_.startNs = TraceRecorder::nowNs();
        active_ = true;
    }

    void finish();

    TraceEvent event_;
    bool active_ = false;
};

/**
 * Span over the enclosing C++ scope. Variants with zero, one, or two
 * named integer args:
 *   SPARSETIR_TRACE_SCOPE("engine", "dispatch.spmm_hyb");
 *   SPARSETIR_TRACE_SCOPE2("exec", "unit", "kernel", k, "request", r);
 * Define SPARSETIR_TRACE_DISABLED to compile every macro span out
 * entirely (the runtime check already makes them near-free).
 */
#define SPARSETIR_TRACE_CONCAT_IMPL(a, b) a##b
#define SPARSETIR_TRACE_CONCAT(a, b) SPARSETIR_TRACE_CONCAT_IMPL(a, b)

#ifndef SPARSETIR_TRACE_DISABLED
#define SPARSETIR_TRACE_SCOPE(cat, name)                              \
    ::sparsetir::observe::TraceScope SPARSETIR_TRACE_CONCAT(          \
        sparsetir_trace_scope_, __LINE__)(cat, name)
#define SPARSETIR_TRACE_SCOPE1(cat, name, a0name, a0)                 \
    ::sparsetir::observe::TraceScope SPARSETIR_TRACE_CONCAT(          \
        sparsetir_trace_scope_,                                       \
        __LINE__)(cat, name, a0name, static_cast<int64_t>(a0))
#define SPARSETIR_TRACE_SCOPE2(cat, name, a0name, a0, a1name, a1)     \
    ::sparsetir::observe::TraceScope SPARSETIR_TRACE_CONCAT(          \
        sparsetir_trace_scope_,                                       \
        __LINE__)(cat, name, a0name, static_cast<int64_t>(a0),        \
                  a1name, static_cast<int64_t>(a1))
#else
#define SPARSETIR_TRACE_SCOPE(cat, name)                              \
    do {                                                              \
    } while (false)
#define SPARSETIR_TRACE_SCOPE1(cat, name, a0name, a0)                 \
    do {                                                              \
    } while (false)
#define SPARSETIR_TRACE_SCOPE2(cat, name, a0name, a0, a1name, a1)     \
    do {                                                              \
    } while (false)
#endif

/** True when the SPARSETIR_TRACE env var asks for tracing ("1",
 *  "true", any value other than "" or "0"). */
bool traceRequestedByEnv();

} // namespace observe
} // namespace sparsetir

#endif // SPARSETIR_OBSERVE_TRACE_H_
