/**
 * @file
 * The composable hyb(c, k) format of paper §4.2.1 (Figure 11).
 *
 * Columns are split into c partitions. Within each partition, rows are
 * bucketed by length: bucket i holds rows with 2^(i-1) < len <= 2^i,
 * padded to width 2^i. Rows longer than 2^k are split into multiple
 * ELL rows of the widest bucket (compile-time load balancing). Each
 * (partition, bucket) pair is an ELL sub-matrix.
 */

#ifndef SPARSETIR_FORMAT_HYB_H_
#define SPARSETIR_FORMAT_HYB_H_

#include <cstdint>
#include <vector>

#include "format/csr.h"
#include "format/ell.h"

namespace sparsetir {
namespace format {

/** hyb(c, k) decomposition of a CSR matrix. */
struct Hyb
{
    int32_t numPartitions = 1;  // c
    int32_t maxWidthLog2 = 0;   // k
    int64_t rows = 0;
    int64_t cols = 0;
    /** buckets[p][b] has width 2^b; may have zero rows. */
    std::vector<std::vector<Ell>> buckets;

    /** Stored entries including padding. */
    int64_t storedEntries() const;
    /** Padding zeros across all buckets. */
    int64_t paddedZeros() const;
    /**
     * %padding as reported in Tables 1/2: padded zeros over stored
     * entries.
     */
    double paddingRatio() const;
};

/**
 * Decompose a CSR matrix into hyb(c, k). When k < 0 it defaults to the
 * paper's heuristic k = ceil(log2(nnz / rows)) (clamped to >= 0).
 */
Hyb hybFromCsr(const Csr &m, int32_t c, int32_t k = -1);

/** The paper's default bucket cap: ceil(log2(avg row length)). */
int32_t hybDefaultK(const Csr &m);

/** Reassemble to dense for validation. */
std::vector<float> hybToDense(const Hyb &m);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_HYB_H_
