/**
 * @file
 * Deterministic parallel execution of lowered kernels on the host
 * interpreter.
 *
 * Two axes of parallelism, both preserving the serial interpreter's
 * results exactly (bitwise, up to IEEE signed-zero identity):
 *
 *  - runKernel: one kernel's outermost blockIdx.x loop is split into
 *    contiguous chunks executed on worker threads. Plain (overwrite)
 *    stores to bound buffers are per-block disjoint by the lowering
 *    contract, so chunks write shared storage directly.
 *    Read-modify-write outputs (cache_write accumulate, rfactor
 *    write-back, atomic_add) are privatized: each chunk accumulates
 *    into a private zero copy, and the privates are folded into the
 *    shared buffer in chunk order. Per output element the sequence of
 *    additions is exactly the serial one, so float results match the
 *    serial interpreter.
 *
 *  - runKernels: independent kernels of one request (hyb bucket
 *    kernels, RGCN per-relation-bucket kernels) run concurrently,
 *    with the same privatization applied per kernel and privates
 *    folded in kernel-list order. Non-accumulated writes of kernels
 *    in one batch must target disjoint elements (true for every
 *    kernel family the engine emits, which share outputs only
 *    through accumulation).
 *
 * Privatization replays the serial addition order per element only
 * when each parallel unit performs at most ONE read-modify-write
 * write-back per output element: folding a private that accumulated
 * two write-backs (a1 + a2) onto a non-zero pre-value computes
 * pre + (a1 + a2) where serial computed ((pre + a1) + a2) — an
 * ULP-level reassociation. Kernels that can write one element twice
 * (hyb's widest bucket when long rows were split into several ELL
 * rows) are therefore marked `exclusive` by the caller — the engine
 * derives the mask from format provenance (duplicate row indices) —
 * and runKernels executes them at their exact list position directly
 * on shared storage, parallelizing the kernels between them.
 *
 * The write-set classification is computed from the IR, not trusted
 * from callers: accumulatedParams() scans for read-modify-write
 * stores and atomic_add calls on parameter-bound buffers.
 */

#ifndef SPARSETIR_ENGINE_EXECUTOR_H_
#define SPARSETIR_ENGINE_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/thread_pool.h"
#include "ir/prim_func.h"
#include "runtime/interpreter.h"

namespace sparsetir {
namespace engine {

/** Per-call execution controls. */
struct ExecOptions
{
    /** Worker cap for this call; 0 means the pool size. */
    int workers = 0;
    /** Do not split a grid into chunks smaller than this. */
    int64_t minBlocksPerChunk = 8;
    /** Master switch; false forces serial in-order execution. */
    bool parallel = true;
};

class ParallelExecutor
{
  public:
    explicit ParallelExecutor(std::shared_ptr<ThreadPool> pool);

    const std::shared_ptr<ThreadPool> &pool() const { return pool_; }

    /**
     * Names of parameter-bound buffers the kernel updates by
     * read-modify-write (accumulate write-back or atomic_add).
     */
    static std::vector<std::string>
    accumulatedParams(const ir::PrimFunc &func);

    /**
     * Execute one kernel, splitting its blockIdx range if profitable.
     * `accum`, when non-null, is the precomputed accumulatedParams()
     * of `func` (artifact caches store it so warm dispatches skip
     * the IR walk); null recomputes it on the fly.
     */
    void runKernel(const ir::PrimFunc &func,
                   const runtime::Bindings &bindings,
                   const ExecOptions &options = ExecOptions(),
                   const std::vector<std::string> *accum = nullptr) const;

    /**
     * Execute a batch of kernels over shared bindings. Results are
     * bitwise identical to running the kernels serially in list
     * order. `exclusive`, when non-empty, must parallel `funcs`;
     * marked kernels may write one output element more than once and
     * are run serially at their list position (see file comment).
     * `accums`, when non-null, must parallel `funcs` with each
     * kernel's precomputed accumulatedParams().
     */
    void runKernels(const std::vector<ir::PrimFunc> &funcs,
                    const runtime::Bindings &bindings,
                    const ExecOptions &options = ExecOptions(),
                    const std::vector<uint8_t> &exclusive =
                        std::vector<uint8_t>(),
                    const std::vector<std::vector<std::string>>
                        *accums = nullptr) const;

  private:
    std::shared_ptr<ThreadPool> pool_;
};

} // namespace engine
} // namespace sparsetir

#endif // SPARSETIR_ENGINE_EXECUTOR_H_
