/**
 * @file
 * Native (C -> .so) tier tests: emitter golden-source checks over the
 * six kernel families, differential runs asserting the dlopen'd
 * kernels are bitwise identical to the interpreter (block windows and
 * offset views included), the persistent artifact cache (warm start
 * across engine restarts with zero recompiles, corrupted and stale
 * artifacts rejected and rebuilt), the engine's promotion policy
 * (threshold crossing, one compile under 8-thread contention, atomic
 * swap) and graceful degradation to bytecode when the C compiler is
 * missing.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ops.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "format/hyb.h"
#include "graph/generator.h"
#include "ir/stmt.h"
#include "runtime/interpreter.h"
#include "runtime/native/c_emitter.h"
#include "runtime/native/native_compiler.h"
#include "test_util.h"
#include "transform/lower_sparse_buffer.h"
#include "transform/lower_sparse_iter.h"

namespace sparsetir {
namespace {

using format::Csr;
using runtime::Backend;
using runtime::Bindings;
using runtime::NDArray;
using testutil::bitwiseEqual;
using testutil::randomVector;
namespace native = runtime::native;

/** Scoped environment override, restoring the prior value on exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_) {
            old_ = old;
        }
        if (value != nullptr) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }

    ~EnvGuard()
    {
        if (had_) {
            ::setenv(name_.c_str(), old_.c_str(), 1);
        } else {
            ::unsetenv(name_.c_str());
        }
    }

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

/** Fresh cache dir + SPARSETIR_NATIVE_CACHE_DIR override for one test:
 *  every test starts cold, so compile counts are deterministic. */
class CacheDirGuard
{
  public:
    CacheDirGuard()
    {
        char tmpl[] = "/tmp/sparsetir-native-test-XXXXXX";
        char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        dir_ = dir != nullptr ? dir : "/tmp";
        env_ = std::make_unique<EnvGuard>("SPARSETIR_NATIVE_CACHE_DIR",
                                          dir_.c_str());
    }

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
    std::unique_ptr<EnvGuard> env_;
};

template <typename Pred>
bool
waitFor(Pred pred, int timeout_ms = 30000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/** SpMM-CSR bindings over one structure (the shared fixture shape). */
struct SpmmFixture
{
    Csr a;
    int64_t feat;
    NDArray indptr, indices, values, b;

    SpmmFixture(int64_t rows, int64_t nnz, uint64_t seed,
                int64_t feat_size = 16)
        : a(graph::powerLawGraph(rows, nnz, 1.8, seed)),
          feat(feat_size),
          indptr(NDArray::fromInt32(a.indptr)),
          indices(NDArray::fromInt32(a.indices)),
          values(NDArray::fromFloat(a.values)),
          b(NDArray::fromFloat(randomVector(a.cols * feat_size,
                                            seed + 1)))
    {
    }

    Bindings
    bindings(NDArray *c) const
    {
        Bindings bound;
        bound.scalars = {{"m", a.rows},
                         {"n", a.cols},
                         {"nnz", a.nnz()},
                         {"feat_size", feat}};
        bound.arrays = {{"J_indptr", const_cast<NDArray *>(&indptr)},
                        {"J_indices", const_cast<NDArray *>(&indices)},
                        {"A_data", const_cast<NDArray *>(&values)},
                        {"B_data", const_cast<NDArray *>(&b)},
                        {"C_data", c}};
        return bound;
    }

    NDArray
    interpreterReference() const
    {
        auto func = core::compileSpmmCsrFunc(feat, core::SpmmSchedule());
        NDArray c({a.rows * feat}, ir::DataType::float32());
        runtime::runInterpreted(func, bindings(&c));
        return c;
    }
};

/** Interpreter-engine reference for one engine-level spmmCsr dispatch. */
NDArray
engineSpmmReference(const Csr &a, int64_t feat,
                    const std::vector<float> &b_host)
{
    engine::EngineOptions options;
    options.backend = Backend::kInterpreter;
    engine::Engine eng(options);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    eng.spmmCsr(a, feat, &b, &c);
    return c;
}

// ---------------------------------------------------------------------
// Emitter golden-source checks
// ---------------------------------------------------------------------

TEST(NativeEmitter, GoldenSourceAcrossSixKernelFamilies)
{
    struct Family
    {
        const char *tag;
        ir::PrimFunc func;
    };
    std::vector<Family> families;
    families.push_back(
        {"golden-spmm-csr",
         core::compileSpmmCsrFunc(16, core::SpmmSchedule())});
    families.push_back(
        {"golden-sddmm",
         core::compileSddmmFunc(16, core::SddmmSchedule())});
    families.push_back({"golden-spmm-bsr",
                        core::compileBsrSpmmFunc(2, 8, false)});
    families.push_back({"golden-sddmm-bsr",
                        core::compileBsrSddmmFunc(2, 8, false)});
    families.push_back({"golden-spmm-srbcrs",
                        core::compileSrbcrsSpmmFunc(2, 2, 8)});
    families.push_back(
        {"golden-rgms-ell",
         core::compileEllRgmsFunc(8, 4, 8, 8, "p0", false)});

    for (const Family &family : families) {
        SCOPED_TRACE(family.tag);
        native::EmitResult emitted =
            native::emitC(family.func, family.tag);

        // A self-contained translation unit with the fixed entry and
        // meta symbols, identified by the caller's key tag.
        EXPECT_NE(emitted.source.find(
                      "int32_t sparsetir_kernel_run(StCtx *ctx)"),
                  std::string::npos);
        EXPECT_NE(emitted.source.find("sparsetir_kernel_meta"),
                  std::string::npos);
        EXPECT_NE(emitted.source.find(std::string("tag=") +
                                      family.tag),
                  std::string::npos);

        // Every family writes a float output through the checked
        // store helper, and every buffer access goes through the
        // faultable resolve path.
        EXPECT_NE(emitted.source.find("st_st_f"), std::string::npos);
        EXPECT_NE(emitted.source.find("st_resolve"),
                  std::string::npos);

        // All six kernels carry a blockIdx.x grid, so the emitted
        // outer loop must honor the kBlockWindow contract.
        EXPECT_TRUE(emitted.hasWindow);
        EXPECT_NE(emitted.source.find("ctx->block_end"),
                  std::string::npos);

        EXPECT_GT(emitted.numParamSlots, 0);
        EXPECT_GE(static_cast<int>(emitted.slotNames.size()),
                  emitted.numParamSlots);
    }

    // Family-specific binding metadata: the spmm kernel's parameter
    // slots are exactly the engine's binding names.
    native::EmitResult spmm = native::emitC(
        core::compileSpmmCsrFunc(16, core::SpmmSchedule()), "golden");
    std::vector<std::string> params(
        spmm.slotNames.begin(),
        spmm.slotNames.begin() + spmm.numParamSlots);
    for (const char *name :
         {"J_indptr", "J_indices", "A_data", "B_data", "C_data"}) {
        EXPECT_NE(std::find(params.begin(), params.end(), name),
                  params.end())
            << "missing param slot " << name;
    }
}

TEST(NativeEmitter, RejectsStageOneViaDiagnostic)
{
    ir::PrimFunc stage1 = core::buildSddmm(true);
    EXPECT_THROW(native::emitC(stage1, "reject"), UserError);

    ir::PrimFunc stage3 = transform::lowerSparseBuffers(
        transform::lowerSparseIterations(stage1));
    native::EmitResult emitted = native::emitC(stage3, "accept");
    EXPECT_FALSE(emitted.source.empty());
}

// ---------------------------------------------------------------------
// Differential: native kernel vs interpreter, bitwise
// ---------------------------------------------------------------------

TEST(NativeKernel, SpmmCsrBitwiseMatchesInterpreter)
{
    CacheDirGuard cache;
    SpmmFixture fx(400, 5000, 71);
    auto func = core::compileSpmmCsrFunc(fx.feat, core::SpmmSchedule());

    uint64_t before = native::nativeCompileCount();
    auto kernel = native::compileNative(func, "diff-spmm");
    ASSERT_NE(kernel, nullptr);
    EXPECT_FALSE(kernel->diskHit);
    EXPECT_EQ(native::nativeCompileCount(), before + 1);

    NDArray c_native({fx.a.rows * fx.feat}, ir::DataType::float32());
    native::execute(*kernel, fx.bindings(&c_native),
                    runtime::RunOptions());
    EXPECT_TRUE(bitwiseEqual(fx.interpreterReference(), c_native));
}

TEST(NativeKernel, BlockWindowsComposeToFullRun)
{
    CacheDirGuard cache;
    SpmmFixture fx(300, 3500, 72, 8);
    auto func = core::compileSpmmCsrFunc(fx.feat, core::SpmmSchedule());
    auto kernel = native::compileNative(func, "win-spmm");
    ASSERT_NE(kernel, nullptr);
    ASSERT_TRUE(kernel->hasWindow);

    NDArray c_windows({fx.a.rows * fx.feat}, ir::DataType::float32());
    Bindings bindings = fx.bindings(&c_windows);
    runtime::LaunchInfo info = runtime::launchInfo(func, bindings);
    ASSERT_TRUE(info.hasBlockIdx);
    ASSERT_GE(info.blockExtent, 3);
    int64_t third = info.blockExtent / 3;
    std::vector<std::pair<int64_t, int64_t>> windows = {
        {0, third},
        {third, 2 * third},
        {2 * third, info.blockExtent}};
    for (const auto &[begin, end] : windows) {
        runtime::RunOptions options;
        options.blockBegin = begin;
        options.blockEnd = end;
        native::execute(*kernel, bindings, options);
    }
    EXPECT_TRUE(bitwiseEqual(fx.interpreterReference(), c_windows));

    // Windowing a kernel with no blockIdx loop is a user error, like
    // the other two backends.
    auto flat = ir::primFunc("flat");
    ir::Buffer out_buf = ir::denseBuffer("out", {ir::intImm(1)},
                                         ir::DataType::float32());
    flat->params = {out_buf->data};
    flat->bufferMap.emplace_back(out_buf->data, out_buf);
    flat->body = ir::bufferStore(out_buf, {ir::intImm(0)},
                                 ir::floatImm(7.0));
    flat->stage = ir::IrStage::kStage3;
    auto flat_kernel = native::compileNative(flat, "win-flat");
    ASSERT_FALSE(flat_kernel->hasWindow);
    NDArray out({1}, ir::DataType::float32());
    Bindings flat_bindings;
    flat_bindings.arrays = {{"out_data", &out}};
    runtime::RunOptions window;
    window.blockEnd = 1;
    EXPECT_THROW(
        native::execute(*flat_kernel, flat_bindings, window),
        UserError);
}

TEST(NativeKernel, OffsetViewRebasedRunMatchesInterpreterBitwise)
{
    CacheDirGuard cache;
    // f(base, n, out, v): for i in [0, n): out[base+i] += v[i],
    // against a PACKED `out` (window [4,8) u [12,14)) — the grid-chunk
    // privatization contract the engine's fused dispatch relies on.
    auto func = ir::primFunc("rebased");
    ir::Var base = ir::var("base");
    ir::Var n = ir::var("n");
    ir::Var i = ir::var("i");
    ir::Buffer out = ir::denseBuffer("out", {ir::intImm(64)},
                                     ir::DataType::float32());
    ir::Buffer v = ir::denseBuffer("v", {ir::intImm(64)},
                                   ir::DataType::float32());
    func->params = {base, n, out->data, v->data};
    func->bufferMap.emplace_back(out->data, out);
    func->bufferMap.emplace_back(v->data, v);
    ir::Expr idx = ir::add(base, i);
    func->body = ir::forLoop(
        i, ir::intImm(0), n,
        ir::bufferStore(out, {idx},
                        ir::add(ir::bufferLoad(out, {idx}),
                                ir::bufferLoad(v, {i}))));
    func->stage = ir::IrStage::kStage3;
    auto kernel = native::compileNative(func, "rebased");
    ASSERT_NE(kernel, nullptr);

    auto view = runtime::OffsetView::fromSpans({{4, 8}, {12, 14}});
    NDArray packed_interp =
        NDArray::fromFloat({10, 20, 30, 40, 50, 60});
    NDArray packed_native =
        NDArray::fromFloat({10, 20, 30, 40, 50, 60});
    NDArray vals = NDArray::fromFloat({1, 2, 3, 4});

    runtime::RunOptions options;
    options.offsetViews.push_back(
        runtime::BufferView{"out_data", &view});
    Bindings bindings;
    bindings.scalars = {{"base", 4}, {"n", 4}};
    bindings.arrays = {{"out_data", &packed_interp},
                       {"v_data", &vals}};
    runtime::runInterpreted(func, bindings, options);
    bindings.arrays["out_data"] = &packed_native;
    native::execute(*kernel, bindings, options);
    EXPECT_TRUE(bitwiseEqual(packed_interp, packed_native));

    // The second span: absolute [12,14) lands in packed [4,6).
    bindings.scalars["base"] = 12;
    bindings.scalars["n"] = 2;
    native::execute(*kernel, bindings, options);
    EXPECT_EQ(packed_native.floatAt(4), 51.0);
    EXPECT_EQ(packed_native.floatAt(5), 62.0);

    // Accesses outside the window fault, exactly like the VM.
    bindings.scalars["base"] = 8;
    EXPECT_THROW(native::execute(*kernel, bindings, options),
                 InternalError);

    // Without the view the same offsets address the full array.
    NDArray full({64}, ir::DataType::float32());
    bindings.arrays["out_data"] = &full;
    bindings.scalars["base"] = 4;
    bindings.scalars["n"] = 4;
    native::execute(*kernel, bindings, runtime::RunOptions());
    EXPECT_EQ(full.floatAt(4), 1.0);
    EXPECT_EQ(full.floatAt(7), 4.0);
}

// ---------------------------------------------------------------------
// Persistent artifact cache
// ---------------------------------------------------------------------

TEST(NativeCompiler, PersistedArtifactServesWarmStart)
{
    CacheDirGuard cache;
    SpmmFixture fx(200, 2200, 73, 8);
    auto func = core::compileSpmmCsrFunc(fx.feat, core::SpmmSchedule());

    uint64_t before = native::nativeCompileCount();
    auto first = native::compileNative(func, "warm");
    ASSERT_NE(first, nullptr);
    EXPECT_FALSE(first->diskHit);
    EXPECT_EQ(native::nativeCompileCount(), before + 1);

    // A second load of the same (source, tag) — the restarted-process
    // shape — finds the persisted .so and never invokes the compiler.
    auto second = native::compileNative(func, "warm");
    ASSERT_NE(second, nullptr);
    EXPECT_TRUE(second->diskHit);
    EXPECT_EQ(second->soPath, first->soPath);
    EXPECT_EQ(native::nativeCompileCount(), before + 1);

    NDArray c_native({fx.a.rows * fx.feat}, ir::DataType::float32());
    native::execute(*second, fx.bindings(&c_native),
                    runtime::RunOptions());
    EXPECT_TRUE(bitwiseEqual(fx.interpreterReference(), c_native));
}

TEST(NativeCompiler, CorruptedArtifactRejectedAndRebuilt)
{
    CacheDirGuard cache;
    SpmmFixture fx(150, 1500, 74, 8);
    auto func = core::compileSpmmCsrFunc(fx.feat, core::SpmmSchedule());
    auto first = native::compileNative(func, "corrupt");
    ASSERT_NE(first, nullptr);
    std::string so_path = first->soPath;
    // Drop the dlopen handle before scribbling over its backing file
    // (truncating a mapped object is a SIGBUS, not a test).
    first.reset();

    // Truncate the persisted artifact to garbage: dlopen fails, the
    // loader must rebuild rather than serve the corpse.
    {
        std::ofstream trash(so_path,
                            std::ios::binary | std::ios::trunc);
        trash << "not an ELF object";
    }
    uint64_t before = native::nativeCompileCount();
    auto rebuilt = native::compileNative(func, "corrupt");
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_FALSE(rebuilt->diskHit);
    EXPECT_EQ(native::nativeCompileCount(), before + 1);

    NDArray c_native({fx.a.rows * fx.feat}, ir::DataType::float32());
    native::execute(*rebuilt, fx.bindings(&c_native),
                    runtime::RunOptions());
    EXPECT_TRUE(bitwiseEqual(fx.interpreterReference(), c_native));
}

TEST(NativeCompiler, StaleArtifactRejectedByMetaCheck)
{
    CacheDirGuard cache;
    auto func = core::compileSpmmCsrFunc(8, core::SpmmSchedule());
    // Two tags bake two distinct meta strings (and hashes). Copying
    // artifact A over B's path simulates a stale/foreign file at a
    // colliding name: B's load must reject A's meta and rebuild.
    auto a = native::compileNative(func, "stale-a");
    auto b = native::compileNative(func, "stale-b");
    ASSERT_NE(a->soPath, b->soPath);
    std::string a_path = a->soPath;
    std::string b_path = b->soPath;
    // Release the mapped handles before rewriting b's backing file.
    a.reset();
    b.reset();
    {
        std::ifstream src(a_path, std::ios::binary);
        std::ofstream dst(b_path, std::ios::binary | std::ios::trunc);
        dst << src.rdbuf();
    }
    uint64_t before = native::nativeCompileCount();
    auto rebuilt = native::compileNative(func, "stale-b");
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_FALSE(rebuilt->diskHit);
    EXPECT_EQ(native::nativeCompileCount(), before + 1);
}

TEST(NativeCompiler, ExactlyOneCompileUnderContention)
{
    CacheDirGuard cache;
    auto func = core::compileSpmmCsrFunc(16, core::SpmmSchedule());
    uint64_t before = native::nativeCompileCount();

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const native::NativeKernel>> kernels(
        kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            kernels[t] = native::compileNative(func, "race");
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }

    // The process-wide cache lock serializes probe-or-build: one
    // thread compiles, the other seven load its installed artifact.
    EXPECT_EQ(native::nativeCompileCount(), before + 1);
    int misses = 0;
    for (const auto &kernel : kernels) {
        ASSERT_NE(kernel, nullptr);
        ASSERT_NE(kernel->entry, nullptr);
        misses += kernel->diskHit ? 0 : 1;
    }
    EXPECT_EQ(misses, 1);
}

TEST(NativeCompiler, MissingCompilerFailsAsUserError)
{
    CacheDirGuard cache;
    EnvGuard cc("SPARSETIR_NATIVE_CC",
                "/nonexistent/sparsetir-test-cc");
    auto func = core::compileSpmmCsrFunc(8, core::SpmmSchedule());
    uint64_t before = native::nativeCompileCount();
    EXPECT_THROW(native::compileNative(func, "no-cc"), UserError);
    EXPECT_EQ(native::nativeCompileCount(), before);
}

// ---------------------------------------------------------------------
// Engine promotion policy
// ---------------------------------------------------------------------

TEST(NativeEngine, SynchronousPromotionSwapsArtifactTransparently)
{
    CacheDirGuard cache;
    Csr a = graph::powerLawGraph(350, 4200, 1.9, 81);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 82);
    NDArray reference = engineSpmmReference(a, feat, b_host);

    engine::EngineOptions options;
    options.backend = Backend::kNative;
    options.nativePromoteAfter = 0;  // promote inside the first resolve
    engine::Engine eng(options);

    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    eng.spmmCsr(a, feat, &b, &c);
    EXPECT_TRUE(bitwiseEqual(reference, c));

    engine::NativeStats stats = eng.nativeStats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.fallbacks, 0u);

    // Warm dispatch runs the swapped-in native kernel; still bitwise.
    NDArray c_warm({a.rows * feat}, ir::DataType::float32());
    eng.spmmCsr(a, feat, &b, &c_warm);
    EXPECT_TRUE(bitwiseEqual(reference, c_warm));
    EXPECT_EQ(eng.nativeStats().promotions, 1u);
}

TEST(NativeEngine, WarmStartedEngineServesPersistedArtifact)
{
    CacheDirGuard cache;
    Csr a = graph::powerLawGraph(250, 3000, 1.7, 83);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 84);
    NDArray reference = engineSpmmReference(a, feat, b_host);

    engine::EngineOptions options;
    options.backend = Backend::kNative;
    options.nativePromoteAfter = 0;

    {
        engine::Engine cold(options);
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        cold.spmmCsr(a, feat, &b, &c);
        EXPECT_TRUE(bitwiseEqual(reference, c));
        EXPECT_GE(cold.nativeStats().compiles, 1u);
    }

    // A second engine (the restarted-server shape) finds the
    // persisted .so: zero compiler invocations, pure disk hits.
    uint64_t cc_before = native::nativeCompileCount();
    engine::Engine warm(options);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    warm.spmmCsr(a, feat, &b, &c);
    EXPECT_TRUE(bitwiseEqual(reference, c));

    engine::NativeStats stats = warm.nativeStats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.compiles, 0u);
    EXPECT_GE(stats.diskHits, 1u);
    EXPECT_EQ(stats.fallbacks, 0u);
    EXPECT_EQ(native::nativeCompileCount(), cc_before);

    // The warm engine's own compile cache still records its (one)
    // artifact build — native promotion rides on the regular miss.
    engine::CacheStats cache_stats = warm.cacheStats();
    EXPECT_EQ(cache_stats.misses, 1u);
    NDArray c2({a.rows * feat}, ir::DataType::float32());
    warm.spmmCsr(a, feat, &b, &c2);
    EXPECT_EQ(warm.cacheStats().hits, 1u);
    EXPECT_TRUE(bitwiseEqual(reference, c2));
}

TEST(NativeEngine, BackgroundPromotionOnceUnderContention)
{
    CacheDirGuard cache;
    Csr a = graph::powerLawGraph(300, 3600, 1.8, 85);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 86);
    NDArray reference = engineSpmmReference(a, feat, b_host);

    engine::EngineOptions options;
    options.backend = Backend::kNative;
    options.nativePromoteAfter = 2;  // background, third resolve
    engine::Engine eng(options);

    uint64_t cc_before = native::nativeCompileCount();
    constexpr int kThreads = 8;
    std::vector<NDArray> outputs;
    outputs.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        outputs.emplace_back(
            NDArray({a.rows * feat}, ir::DataType::float32()));
    }
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            NDArray b = NDArray::fromFloat(b_host);
            eng.spmmCsr(a, feat, &b, &outputs[t]);
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    // Pre-promotion dispatches served on bytecode; all bitwise.
    for (const NDArray &c : outputs) {
        EXPECT_TRUE(bitwiseEqual(reference, c));
    }

    // The threshold crossed during the contention burst; exactly one
    // background promotion (and one compiler run) results.
    ASSERT_TRUE(waitFor(
        [&] { return eng.nativeStats().promotions >= 1; }))
        << "background promotion never completed";
    EXPECT_EQ(eng.nativeStats().promotions, 1u);
    EXPECT_EQ(eng.nativeStats().compiles, 1u);
    EXPECT_EQ(native::nativeCompileCount(), cc_before + 1);

    // Post-swap dispatch runs the native artifact; still bitwise.
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c_after({a.rows * feat}, ir::DataType::float32());
    eng.spmmCsr(a, feat, &b, &c_after);
    EXPECT_TRUE(bitwiseEqual(reference, c_after));
}

// Destroying an engine with a background promotion still in flight
// must join the promotion task first: the task captures the engine
// and records into its registry, so letting it outlive the engine is
// a use-after-free (caught by ASan before ~Engine waited on the
// promotion futures).
TEST(NativeEngine, DestructionJoinsInFlightPromotion)
{
    CacheDirGuard cache;
    Csr a = graph::powerLawGraph(250, 3000, 1.8, 93);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 94);

    uint64_t cc_before = native::nativeCompileCount();
    {
        engine::EngineOptions options;
        options.backend = Backend::kNative;
        options.nativePromoteAfter = 1;  // background, second resolve
        engine::Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        eng.spmmCsr(a, feat, &b, &c);
        eng.spmmCsr(a, feat, &b, &c);  // crosses the threshold
        // Engine destructs here, racing the promotion task's cc run.
    }
    // The destructor waited: the compile finished (and nothing it
    // touched was freed — this test exists for the sanitizer jobs).
    EXPECT_EQ(native::nativeCompileCount(), cc_before + 1);
}

TEST(NativeEngine, HybBucketsPromoteEveryKernel)
{
    CacheDirGuard cache;
    Csr a = graph::powerLawGraph(200, 2400, 1.9, 87);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 88);
    engine::HybConfig config;
    config.partitions = 2;

    NDArray reference({a.rows * feat}, ir::DataType::float32());
    {
        engine::EngineOptions options;
        options.backend = Backend::kInterpreter;
        engine::Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        eng.spmmHyb(a, feat, &b, &reference, config);
    }

    engine::EngineOptions options;
    options.backend = Backend::kNative;
    options.nativePromoteAfter = 0;
    engine::Engine eng(options);
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    eng.spmmHyb(a, feat, &b, &c, config);
    EXPECT_TRUE(bitwiseEqual(reference, c));

    // One promotion covers every bucket kernel of the artifact.
    engine::NativeStats stats = eng.nativeStats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_GE(stats.compiles, 2u);
    EXPECT_EQ(stats.fallbacks, 0u);

    NDArray c_warm({a.rows * feat}, ir::DataType::float32());
    eng.spmmHyb(a, feat, &b, &c_warm, config);
    EXPECT_TRUE(bitwiseEqual(reference, c_warm));
}

TEST(NativeEngine, MissingCompilerDegradesToBytecode)
{
    CacheDirGuard cache;
    EnvGuard cc("SPARSETIR_NATIVE_CC",
                "/nonexistent/sparsetir-test-cc");
    Csr a = graph::powerLawGraph(220, 2600, 1.8, 89);
    int64_t feat = 16;
    auto b_host = randomVector(a.cols * feat, 90);
    NDArray reference = engineSpmmReference(a, feat, b_host);

    engine::EngineOptions options;
    options.backend = Backend::kNative;
    options.nativePromoteAfter = 0;
    engine::Engine eng(options);

    uint64_t cc_before = native::nativeCompileCount();
    NDArray b = NDArray::fromFloat(b_host);
    NDArray c({a.rows * feat}, ir::DataType::float32());
    eng.spmmCsr(a, feat, &b, &c);
    EXPECT_TRUE(bitwiseEqual(reference, c));

    // The promotion ran, the compiler bailed, the dispatch fell back
    // to bytecode — never an error on the request path.
    engine::NativeStats stats = eng.nativeStats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.compiles, 0u);
    EXPECT_GE(stats.fallbacks, 1u);
    EXPECT_EQ(native::nativeCompileCount(), cc_before);

    NDArray c_warm({a.rows * feat}, ir::DataType::float32());
    eng.spmmCsr(a, feat, &b, &c_warm);
    EXPECT_TRUE(bitwiseEqual(reference, c_warm));
}

TEST(NativeEngine, EnvVarSelectsNativeTier)
{
    CacheDirGuard cache;
    Csr a = graph::powerLawGraph(150, 1600, 1.7, 91);
    int64_t feat = 8;
    auto b_host = randomVector(a.cols * feat, 92);

    {
        EnvGuard enable("SPARSETIR_NATIVE", "1");
        engine::EngineOptions options;  // default backend: bytecode
        options.nativePromoteAfter = 0;
        engine::Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        eng.spmmCsr(a, feat, &b, &c);
        EXPECT_EQ(eng.nativeStats().promotions, 1u)
            << "SPARSETIR_NATIVE=1 must upgrade bytecode to native";
        EXPECT_TRUE(
            bitwiseEqual(engineSpmmReference(a, feat, b_host), c));
    }
    {
        EnvGuard disable("SPARSETIR_NATIVE", "0");
        engine::EngineOptions options;
        options.nativePromoteAfter = 0;
        engine::Engine eng(options);
        NDArray b = NDArray::fromFloat(b_host);
        NDArray c({a.rows * feat}, ir::DataType::float32());
        eng.spmmCsr(a, feat, &b, &c);
        EXPECT_EQ(eng.nativeStats().promotions, 0u);
    }
}

} // namespace
} // namespace sparsetir
