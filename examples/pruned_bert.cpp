/**
 * @file
 * Pruned-transformer SpMM (paper §4.3.2): block-pruned weights in
 * BSR vs DBSR, movement-pruned weights in SR-BCRS, functionally
 * verified and simulated — Figures 17-19 in miniature.
 *
 * Build & run:  ./build/examples/pruned_bert
 */

#include <cstdio>

#include "core/pipeline.h"
#include "format/dcsr.h"
#include "format/srbcrs.h"
#include "graph/pruned_weights.h"
#include "support/rng.h"

using namespace sparsetir;

int
main()
{
    int64_t rows = 1024;
    int64_t cols = 768;
    int64_t seq = 128;

    // ---- Structured (block) pruning: BSR vs DBSR. ----
    format::Csr blocked =
        graph::blockPrunedWeight(rows, cols, 32, 0.05, 0.4, 5);
    format::Bsr bsr = format::bsrFromCsr(blocked, 32);
    format::Dbsr dbsr = format::dbsrFromBsr(bsr);
    std::printf("block-pruned weight: %lld nnz, %lld blocks, "
                "%lld/%lld block rows empty\n",
                static_cast<long long>(blocked.nnz()),
                static_cast<long long>(bsr.nnzBlocks()),
                static_cast<long long>(bsr.blockRows -
                                       dbsr.numStoredBlockRows()),
                static_cast<long long>(bsr.blockRows));

    // Functional check of the tensorized BSR SpMM.
    Rng rng(7);
    std::vector<float> b_host(bsr.blockCols * 32 * seq);
    for (auto &v : b_host) {
        v = static_cast<float>(rng.uniformReal() - 0.5);
    }
    auto shared = std::make_shared<core::BindingSet>();
    runtime::NDArray b = runtime::NDArray::fromFloat(b_host);
    runtime::NDArray c({bsr.blockRows * 32 * seq},
                       ir::DataType::float32());
    shared->external("B_data", &b);
    shared->external("C_data", &c);
    auto kernel = core::compileBsrSpmm(bsr, seq, shared, true);
    kernel->execute();
    auto dense = format::bsrToDense(bsr);
    double worst = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t k = 0; k < seq; ++k) {
            float expect = 0.0f;
            for (int64_t col = 0; col < cols; ++col) {
                expect += dense[r * cols + col] *
                          b_host[col * seq + k];
            }
            worst = std::max(worst, static_cast<double>(std::abs(
                                        expect -
                                        (float)c.floatAt(r * seq + k))));
        }
    }
    std::printf("BSR SpMM functional check: max |err| = %g (%s)\n",
                worst, worst < 1e-2 ? "PASS" : "FAIL");

    // ---- Unstructured pruning: SR-BCRS. ----
    format::Csr unstructured =
        graph::unstructuredPrunedWeight(rows, cols, 0.06, 9);
    format::SrBcrs sr = format::srbcrsFromCsr(unstructured, 8, 32);
    format::Bsr bsr_u = format::bsrFromCsr(unstructured, 32);
    double bsr_density =
        static_cast<double>(unstructured.nnz()) /
        static_cast<double>(bsr_u.values.size());
    std::printf("\nmovement-pruned weight at density 0.06:\n");
    std::printf("  SR-BCRS(8,32) stored density: %.3f\n",
                sr.storedDensity());
    std::printf("  BSR(32)      stored density: %.3f\n", bsr_density);
    std::printf("SR-BCRS keeps %0.1fx less fragmentation than "
                "BSR(32) (paper Figure 19 right panel;\nlower bound "
                "1/t vs 1/b^2, §4.3.2).\n",
                sr.storedDensity() / std::max(bsr_density, 1e-9));
    return 0;
}
