/**
 * @file
 * Compressed Sparse Row storage and conversions.
 *
 * The format library operates on concrete host data; kernels bind its
 * arrays (indptr/indices/values) to the handle parameters of lowered
 * SparseTIR functions.
 */

#ifndef SPARSETIR_FORMAT_CSR_H_
#define SPARSETIR_FORMAT_CSR_H_

#include <cstdint>
#include <vector>

namespace sparsetir {
namespace format {

/** CSR matrix with float values and int32 structure. */
struct Csr
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> indptr;   // rows + 1
    std::vector<int32_t> indices;  // nnz, sorted per row
    std::vector<float> values;     // nnz

    int64_t nnz() const { return static_cast<int64_t>(indices.size()); }

    /** Length of one row. */
    int32_t
    rowLength(int64_t r) const
    {
        return indptr[r + 1] - indptr[r];
    }
};

/** Build CSR from a row-major dense matrix (exact zeros dropped). */
Csr csrFromDense(int64_t rows, int64_t cols,
                 const std::vector<float> &dense);

/** Expand to a row-major dense matrix. */
std::vector<float> csrToDense(const Csr &m);

/** Transpose (also converts CSR <-> CSC views). */
Csr csrTranspose(const Csr &m);

/** Validate structural invariants (sorted indices, monotone indptr). */
bool csrValid(const Csr &m);

/** Value lookup at (r, c); zero when absent. */
float csrAt(const Csr &m, int64_t r, int64_t c);

} // namespace format
} // namespace sparsetir

#endif // SPARSETIR_FORMAT_CSR_H_
