/**
 * @file
 * GPU simulator tests: LRU cache behaviour against hand-traced
 * sequences, scheduler work conservation, launch-overhead accounting
 * and mechanism-level monotonicity properties.
 */

#include <gtest/gtest.h>

#include "baselines/models.h"
#include "gpusim/cache.h"
#include "gpusim/simulator.h"
#include "gpusim/spec.h"
#include "graph/generator.h"

namespace sparsetir {
namespace gpusim {
namespace {

TEST(CacheModel, LruEviction)
{
    // 2 sets x 2 ways x 64B lines = 256 bytes.
    CacheModel cache(256, 64, 2);
    // Lines 0, 2, 4 map to set 0; ways = 2.
    EXPECT_FALSE(cache.accessLine(0));
    EXPECT_FALSE(cache.accessLine(2));
    EXPECT_TRUE(cache.accessLine(0));   // hit, now MRU
    EXPECT_FALSE(cache.accessLine(4));  // evicts 2 (LRU)
    EXPECT_TRUE(cache.accessLine(0));
    EXPECT_FALSE(cache.accessLine(2));  // was evicted
    EXPECT_EQ(cache.hits(), 2);
    EXPECT_EQ(cache.misses(), 4);
}

TEST(CacheModel, FlushForgetsEverything)
{
    CacheModel cache(1024, 64, 4);
    cache.accessLine(1);
    cache.accessLine(2);
    EXPECT_TRUE(cache.accessLine(1));
    cache.flush();
    EXPECT_FALSE(cache.accessLine(1));
}

TEST(CacheModel, ByteToLineMapping)
{
    CacheModel cache(1024, 64, 4);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(63));   // same line
    EXPECT_FALSE(cache.access(64));  // next line
}

/** Kernel with uniform per-block work. */
class UniformKernel : public Kernel
{
  public:
    UniformKernel(int64_t blocks, double flops)
        : blocks_(blocks), flops_(flops)
    {}

    std::string name() const override { return "uniform"; }
    int64_t numBlocks() const override { return blocks_; }

    void
    blockWork(int64_t, BlockWork *work) const override
    {
        work->flops = flops_;
    }

  private:
    int64_t blocks_;
    double flops_;
};

/** Kernel with one giant block and many tiny ones (imbalance). */
class SkewedKernel : public Kernel
{
  public:
    explicit SkewedKernel(int64_t blocks) : blocks_(blocks) {}

    std::string name() const override { return "skewed"; }
    int64_t numBlocks() const override { return blocks_; }

    void
    blockWork(int64_t block_id, BlockWork *work) const override
    {
        work->flops = block_id == 0 ? 1e7 : 1e3;
    }

  private:
    int64_t blocks_;
};

TEST(Simulator, MoreWorkTakesLonger)
{
    Device device(GpuSpec::v100());
    UniformKernel small(80, 1e4);
    UniformKernel large(80, 1e6);
    double t_small = device.launch(small).timeMs;
    double t_large = device.launch(large).timeMs;
    EXPECT_GT(t_large, t_small);
}

TEST(Simulator, LoadImbalanceDetected)
{
    Device device(GpuSpec::v100());
    UniformKernel uniform(160, 1e6);
    SkewedKernel skewed(160);
    KernelStats u = device.launch(uniform);
    KernelStats s = device.launch(skewed);
    EXPECT_LT(u.imbalance, 1.2);
    EXPECT_GT(s.imbalance, 5.0);
}

TEST(Simulator, FusedLaunchSavesOverhead)
{
    Device device(GpuSpec::v100());
    UniformKernel k1(8, 1e3);
    UniformKernel k2(8, 1e3);
    double separate =
        device.launch(k1).timeMs + device.launch(k2).timeMs;
    double fused = device.launchFused({&k1, &k2}).timeMs;
    EXPECT_LT(fused, separate);
    // The saving is about one launch overhead.
    EXPECT_NEAR(separate - fused,
                GpuSpec::v100().launchOverheadUs * 1e-3,
                GpuSpec::v100().launchOverheadUs * 1e-3 * 0.5);
}

TEST(Simulator, TensorCoreFlopsFaster)
{
    Device device(GpuSpec::v100());
    class TcKernel : public Kernel
    {
      public:
        explicit TcKernel(bool tc) : tc_(tc) {}
        std::string name() const override { return "tc"; }
        int64_t numBlocks() const override { return 80; }
        void
        blockWork(int64_t, BlockWork *work) const override
        {
            if (tc_) {
                work->tensorFlops = 1e7;
            } else {
                work->flops = 1e7;
            }
        }

      private:
        bool tc_;
    };
    TcKernel cuda_cores(false);
    TcKernel tensor_cores(true);
    EXPECT_GT(device.launch(cuda_cores).timeMs,
              device.launch(tensor_cores).timeMs);
}

TEST(Simulator, DramTrafficBoundsTime)
{
    Device device(GpuSpec::v100());
    class StreamKernel : public Kernel
    {
      public:
        std::string name() const override { return "stream"; }
        int64_t numBlocks() const override { return 80; }
        void
        blockWork(int64_t b, BlockWork *work) const override
        {
            // 1 MB per block, streaming (no reuse).
            MemAccess access;
            access.addr = static_cast<uint64_t>(b) << 24;
            access.bytes = 1 << 20;
            work->accesses.push_back(access);
        }
    } kernel;
    KernelStats stats = device.launch(kernel);
    // 80 MB at 900 GB/s ~= 0.089 ms; allow overheads.
    double ideal = 80.0 * (1 << 20) / (900.0 * 1e9) * 1e3;
    EXPECT_GT(stats.timeMs, ideal * 0.9);
    EXPECT_LT(stats.timeMs, ideal * 3.0);
    EXPECT_EQ(stats.dramBytes, 80ll << 20);
}

TEST(Simulator, CacheReuseReducesDram)
{
    Device device(GpuSpec::v100());
    class ReuseKernel : public Kernel
    {
      public:
        explicit ReuseKernel(bool reuse) : reuse_(reuse) {}
        std::string name() const override { return "reuse"; }
        int64_t numBlocks() const override { return 80; }
        void
        blockWork(int64_t b, BlockWork *work) const override
        {
            MemAccess access;
            // With reuse every block touches the same 256 KB; without,
            // disjoint ranges.
            access.addr = reuse_ ? 0
                                 : static_cast<uint64_t>(b) << 20;
            access.bytes = 256 << 10;
            work->accesses.push_back(access);
        }

      private:
        bool reuse_;
    };
    ReuseKernel shared_data(true);
    ReuseKernel streaming(false);
    KernelStats s1 = device.launch(shared_data);
    KernelStats s2 = device.launch(streaming);
    EXPECT_LT(s1.dramBytes, s2.dramBytes);
    EXPECT_GT(s1.l2HitRate, s2.l2HitRate);
}

TEST(BaselineModels, RowSplitBalanceVsSorting)
{
    // A power-law matrix: sorting rows by length (Sputnik swizzle)
    // must reduce simulated imbalance versus unsorted row split.
    format::Csr g = graph::powerLawGraph(4000, 60000, 1.6, 5);
    Device device(GpuSpec::v100());
    baselines::RowSplitParams plain;
    plain.rowsPerBlock = 32;
    baselines::RowSplitParams sorted = plain;
    sorted.sortRows = true;
    baselines::RowSplitSpmmKernel k_plain("plain", g, 32, plain);
    baselines::RowSplitSpmmKernel k_sorted("sorted", g, 32, sorted);
    KernelStats s_plain = device.launch(k_plain);
    KernelStats s_sorted = device.launch(k_sorted);
    EXPECT_LT(s_sorted.imbalance, s_plain.imbalance * 1.001);
}

} // namespace
} // namespace gpusim
} // namespace sparsetir
