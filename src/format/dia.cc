#include "format/dia.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace sparsetir {
namespace format {

Dia
diaFromCsr(const Csr &m)
{
    Dia out;
    out.rows = m.rows;
    out.cols = m.cols;
    std::map<int32_t, int64_t> diag_slot;
    for (int64_t r = 0; r < m.rows; ++r) {
        for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
            diag_slot.emplace(m.indices[p] - static_cast<int32_t>(r), 0);
        }
    }
    int64_t slot = 0;
    for (auto &[offset, index] : diag_slot) {
        out.offsets.push_back(offset);
        index = slot++;
    }
    out.data.assign(out.numDiagonals() * m.rows, 0.0f);
    for (int64_t r = 0; r < m.rows; ++r) {
        for (int32_t p = m.indptr[r]; p < m.indptr[r + 1]; ++p) {
            int32_t offset = m.indices[p] - static_cast<int32_t>(r);
            out.data[diag_slot[offset] * m.rows + r] = m.values[p];
        }
    }
    return out;
}

std::vector<float>
diaToDense(const Dia &m)
{
    std::vector<float> dense(m.rows * m.cols, 0.0f);
    for (int64_t d = 0; d < m.numDiagonals(); ++d) {
        int32_t offset = m.offsets[d];
        for (int64_t r = 0; r < m.rows; ++r) {
            int64_t c = r + offset;
            if (c >= 0 && c < m.cols) {
                dense[r * m.cols + c] = m.data[d * m.rows + r];
            }
        }
    }
    return dense;
}

} // namespace format
} // namespace sparsetir
