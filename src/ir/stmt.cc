#include "ir/stmt.h"

namespace sparsetir {
namespace ir {

Stmt
bufferStore(Buffer buffer, std::vector<Expr> indices, Expr value)
{
    ICHECK(buffer != nullptr);
    ICHECK_EQ(indices.size(), buffer->ndim())
        << "buffer " << buffer->name << " expects " << buffer->ndim()
        << " indices";
    return std::make_shared<BufferStoreNode>(std::move(buffer),
                                             std::move(indices),
                                             std::move(value));
}

Stmt
seq(std::vector<Stmt> stmts)
{
    // Flatten nested sequences and drop nulls for canonical form.
    std::vector<Stmt> flat;
    for (auto &s : stmts) {
        if (s == nullptr) {
            continue;
        }
        if (s->kind == StmtKind::kSeq) {
            auto inner = std::static_pointer_cast<const SeqStmtNode>(s);
            flat.insert(flat.end(), inner->seq.begin(), inner->seq.end());
        } else {
            flat.push_back(std::move(s));
        }
    }
    if (flat.size() == 1) {
        return flat[0];
    }
    return std::make_shared<SeqStmtNode>(std::move(flat));
}

Stmt
forLoop(Var loop_var, Expr min_value, Expr extent, Stmt body, ForKind kind,
        std::string thread_tag)
{
    return std::make_shared<ForNode>(std::move(loop_var),
                                     std::move(min_value), std::move(extent),
                                     kind, std::move(body),
                                     std::move(thread_tag));
}

Stmt
block(std::string name, Stmt body, Stmt init)
{
    auto node = std::make_shared<BlockNode>(std::move(name), std::move(body));
    node->init = std::move(init);
    return node;
}

Stmt
ifThenElse(Expr cond, Stmt then_body, Stmt else_body)
{
    return std::make_shared<IfThenElseNode>(std::move(cond),
                                            std::move(then_body),
                                            std::move(else_body));
}

Stmt
letStmt(Var let_var, Expr value, Stmt body)
{
    return std::make_shared<LetStmtNode>(std::move(let_var),
                                         std::move(value), std::move(body));
}

Stmt
allocate(Buffer buffer, Stmt body)
{
    return std::make_shared<AllocateNode>(std::move(buffer),
                                          std::move(body));
}

Stmt
evaluate(Expr value)
{
    return std::make_shared<EvaluateNode>(std::move(value));
}

std::vector<IterKind>
parseIterKinds(const std::string &pattern)
{
    std::vector<IterKind> kinds;
    kinds.reserve(pattern.size());
    for (char c : pattern) {
        if (c == 'S') {
            kinds.push_back(IterKind::kSpatial);
        } else if (c == 'R') {
            kinds.push_back(IterKind::kReduction);
        } else {
            USER_CHECK(false) << "iterator kind must be 'S' or 'R', got '"
                              << c << "'";
        }
    }
    return kinds;
}

} // namespace ir
} // namespace sparsetir
