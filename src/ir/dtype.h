/**
 * @file
 * Scalar data types carried by every SparseTIR expression.
 */

#ifndef SPARSETIR_IR_DTYPE_H_
#define SPARSETIR_IR_DTYPE_H_

#include <cstdint>
#include <string>

namespace sparsetir {
namespace ir {

/**
 * A scalar (or short-vector) data type: type class, bit width and
 * vector lane count. Mirrors the DLPack convention used by TVM.
 */
class DataType
{
  public:
    enum TypeCode : uint8_t {
        kInt = 0,
        kUInt = 1,
        kFloat = 2,
        kBool = 3,
        kHandle = 4,
    };

    DataType() : code_(kInt), bits_(32), lanes_(1) {}
    DataType(TypeCode code, int bits, int lanes = 1)
        : code_(code), bits_(static_cast<uint8_t>(bits)),
          lanes_(static_cast<uint16_t>(lanes))
    {}

    TypeCode code() const { return code_; }
    int bits() const { return bits_; }
    int lanes() const { return lanes_; }

    bool isInt() const { return code_ == kInt; }
    bool isUInt() const { return code_ == kUInt; }
    bool isFloat() const { return code_ == kFloat; }
    bool isBool() const { return code_ == kBool; }
    bool isHandle() const { return code_ == kHandle; }
    bool isScalar() const { return lanes_ == 1; }

    /** Element size in bytes (per lane). */
    int bytes() const { return (bits_ + 7) / 8; }

    /** Same type with a different lane count. */
    DataType
    withLanes(int lanes) const
    {
        return DataType(code_, bits_, lanes);
    }

    bool
    operator==(const DataType &other) const
    {
        return code_ == other.code_ && bits_ == other.bits_ &&
               lanes_ == other.lanes_;
    }
    bool operator!=(const DataType &other) const { return !(*this == other); }

    /** Render as e.g. "float32", "int32x4". */
    std::string str() const;

    static DataType int32() { return DataType(kInt, 32); }
    static DataType int64() { return DataType(kInt, 64); }
    static DataType float16() { return DataType(kFloat, 16); }
    static DataType float32() { return DataType(kFloat, 32); }
    static DataType float64() { return DataType(kFloat, 64); }
    static DataType boolean() { return DataType(kBool, 1); }
    static DataType handle() { return DataType(kHandle, 64); }

  private:
    TypeCode code_;
    uint8_t bits_;
    uint16_t lanes_;
};

} // namespace ir
} // namespace sparsetir

#endif // SPARSETIR_IR_DTYPE_H_
